//! The versioned request/response protocol of the job service.
//!
//! Every message is one line of JSON carrying a `"v"` field; a daemon
//! and a client must speak the same [`PROTO_VERSION`] — unknown versions
//! are rejected with a typed [`ProtoError::Version`], never guessed at.
//! `tridentctl` (client) and `tridentd` (server) share these types, so
//! a request built locally and one decoded off a socket are the same
//! value — the foundation of the service's bit-identity guarantee.
//!
//! Requests:
//!
//! ```json
//! {"v":4,"op":"submit","job":{"workload":"GUPS","policy":"Trident","scale":256,...}}
//! {"v":4,"op":"status","id":3}
//! {"v":4,"op":"result","id":3}
//! {"v":4,"op":"cancel","id":3}
//! {"v":4,"op":"list"}
//! {"v":4,"op":"metrics"}
//! {"v":4,"op":"progress","id":3}
//! {"v":4,"op":"shutdown"}
//! ```
//!
//! Responses mirror the request vocabulary (`"ok"` discriminator) or
//! carry a typed error (`"err"` code plus human-readable `"msg"`).

use core::fmt;

use trident_core::{InjectSite, StatsSnapshot, SNAPSHOT_VERSION};

use crate::json;

/// Version of the request/response wire format. Bump on any change to
/// message shapes; both sides refuse to interoperate across versions.
/// v2: jobs gained co-located tenants and the audit flag; results gained
/// per-tenant rows and the audit-violation count.
/// v3: the observability plane — `metrics`/`progress` requests, the
/// `Metrics`/`Progress` responses, and a `service` block (paused flag +
/// per-shard queue occupancy) on `Status` and `Jobs` answers.
/// v4: fleet resilience — jobs carry an optional idempotency `key`, job
/// summaries carry the key plus an `origin` (client-submitted vs
/// journal-replayed), and the `service` block gains an optional
/// `journal` section (records/replayed/pending) when the daemon runs
/// with a crash-durable job journal.
/// v5: multi-architecture ladders — jobs carry an optional `geometry`
/// (architecture id, e.g. `"sv48"`), results and tenant rows replace the
/// fixed three-element `mapped_bytes` array with per-rung `rungs` rows
/// keyed by size-class label, and tenant `prefer` hints are rung labels
/// resolved against the job's geometry at admission.
pub const PROTO_VERSION: u32 = 5;

/// One simulation cell to run: workload × policy plus the knobs the
/// `SimConfig` builders expose. Mirrors what `tridentctl run` accepted
/// as flags, so the CLI is a thin encoder of this struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload name (`WorkloadSpec::by_name`).
    pub workload: String,
    /// Policy name or paper label (`PolicyKind::from_name`).
    pub policy: String,
    /// Memory-scale divisor.
    pub scale: u64,
    /// Page-size ladder by architecture id (`PageGeometry::by_name`:
    /// `"x86_64"`, `"sv48"`, `"aarch64"`); `None` runs the x86-64
    /// default, bit-identical to pre-v5 jobs.
    pub geometry: Option<String>,
    /// Sampled accesses in the measurement phase.
    pub samples: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// When set, the effective seed is `derive_cell_seed(seed, index)` —
    /// the same derivation the parallel experiment runner applies, so a
    /// submitted job can reproduce any cell of a local grid exactly.
    pub cell_index: Option<u64>,
    /// Fragment physical memory before the run.
    pub fragment: bool,
    /// Ring-tracer capacity in events (`None` = tracing off).
    pub trace_capacity: Option<usize>,
    /// Fold a live profile during measurement.
    pub profile: bool,
    /// Deterministic fault plan (seed + per-site probabilities).
    pub fault: Option<FaultSpec>,
    /// Stream the run's full event trace to this file as JSONL (no
    /// ring, no drops).
    pub trace_out: Option<String>,
    /// Write the run's profile report to this file as JSON (implies
    /// profiling).
    pub profile_out: Option<String>,
    /// Run the per-tick consistency audit and report the violation count
    /// in the result (off by default — it is O(machine) per tick).
    pub audit: bool,
    /// Caller-chosen idempotency key. Two submissions carrying the same
    /// key are the same logical cell — since results are a pure function
    /// of the spec (`derive_cell_seed`), a fleet client dedups retried
    /// and hedged submissions by this key and asserts byte-identity when
    /// duplicates both complete.
    pub key: Option<String>,
    /// Tenants co-located *beside* the primary workload (which runs as
    /// tenant 0 with neutral scheduling). Empty = classic single-tenant
    /// job.
    pub tenants: Vec<TenantJob>,
}

impl JobSpec {
    /// A spec with the given cell identity and the experiment defaults
    /// for everything else.
    #[must_use]
    pub fn new(workload: &str, policy: &str) -> JobSpec {
        JobSpec {
            workload: workload.to_owned(),
            policy: policy.to_owned(),
            scale: 32,
            geometry: None,
            samples: 120_000,
            seed: 42,
            cell_index: None,
            fragment: false,
            trace_capacity: None,
            profile: false,
            fault: None,
            trace_out: None,
            profile_out: None,
            audit: false,
            key: None,
            tenants: Vec::new(),
        }
    }

    pub(crate) fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"workload\":{},\"policy\":{},\"scale\":{},\"samples\":{},\"seed\":{}",
            json::escape(&self.workload),
            json::escape(&self.policy),
            self.scale,
            self.samples,
            self.seed,
        );
        if let Some(cell) = self.cell_index {
            s.push_str(&format!(",\"cell\":{cell}"));
        }
        if let Some(geometry) = &self.geometry {
            s.push_str(",\"geometry\":");
            s.push_str(&json::escape(geometry));
        }
        s.push_str(&format!(
            ",\"fragment\":{},\"profile\":{},\"audit\":{}",
            self.fragment, self.profile, self.audit
        ));
        if !self.tenants.is_empty() {
            let rows: Vec<String> = self.tenants.iter().map(TenantJob::to_json).collect();
            s.push_str(&format!(",\"tenants\":[{}]", rows.join(",")));
        }
        if let Some(cap) = self.trace_capacity {
            s.push_str(&format!(",\"trace\":{cap}"));
        }
        if let Some(fault) = &self.fault {
            s.push_str(",\"fault\":");
            s.push_str(&fault.to_json());
        }
        if let Some(path) = &self.trace_out {
            s.push_str(",\"trace_out\":");
            s.push_str(&json::escape(path));
        }
        if let Some(path) = &self.profile_out {
            s.push_str(",\"profile_out\":");
            s.push_str(&json::escape(path));
        }
        if let Some(key) = &self.key {
            s.push_str(",\"key\":");
            s.push_str(&json::escape(key));
        }
        s.push('}');
        s
    }

    pub(crate) fn from_json(obj: &str) -> Result<JobSpec, ProtoError> {
        Ok(JobSpec {
            workload: json::str_field(obj, "workload").ok_or_else(|| bad("job.workload"))?,
            policy: json::str_field(obj, "policy").ok_or_else(|| bad("job.policy"))?,
            scale: json::u64_field(obj, "scale").ok_or_else(|| bad("job.scale"))?,
            samples: usize_field(obj, "samples").ok_or_else(|| bad("job.samples"))?,
            seed: json::u64_field(obj, "seed").ok_or_else(|| bad("job.seed"))?,
            cell_index: optional(obj, "cell", json::u64_field)?,
            geometry: optional(obj, "geometry", json::str_field)?,
            fragment: json::bool_field(obj, "fragment").ok_or_else(|| bad("job.fragment"))?,
            trace_capacity: optional(obj, "trace", usize_field)?,
            profile: json::bool_field(obj, "profile").ok_or_else(|| bad("job.profile"))?,
            fault: match json::field(obj, "fault") {
                None => None,
                Some(raw) => Some(FaultSpec::from_json(raw)?),
            },
            trace_out: optional(obj, "trace_out", json::str_field)?,
            profile_out: optional(obj, "profile_out", json::str_field)?,
            audit: json::bool_field(obj, "audit").ok_or_else(|| bad("job.audit"))?,
            key: optional(obj, "key", json::str_field)?,
            tenants: match json::field(obj, "tenants").and_then(json::items) {
                None => Vec::new(),
                Some(raw) => raw
                    .into_iter()
                    .map(TenantJob::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            },
        })
    }
}

/// One co-located tenant on the wire: its workload plus the scheduling
/// parameters and promotion hints the engine registers for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantJob {
    /// Workload name (`WorkloadSpec::by_name`).
    pub workload: String,
    /// Weighted-round-robin share of the promotion daemon (≥ 1).
    pub weight: u32,
    /// Per-tick promotion-budget override (`None` = daemon default).
    pub chunk_budget: Option<usize>,
    /// Restrict background promotion to one ladder rung, by the job
    /// geometry's size-class label (`"2MB"`, `"64KB-napot"`, ...);
    /// resolved against the geometry at admission.
    pub prefer: Option<String>,
    /// Decline background promotion entirely.
    pub opt_out: bool,
    /// Pinned hot ranges as `(start page, pages)` pairs.
    pub pins: Vec<(u64, u64)>,
}

impl TenantJob {
    /// A neutral tenant running `workload`.
    #[must_use]
    pub fn new(workload: &str) -> TenantJob {
        TenantJob {
            workload: workload.to_owned(),
            weight: 1,
            chunk_budget: None,
            prefer: None,
            opt_out: false,
            pins: Vec::new(),
        }
    }

    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"workload\":{},\"weight\":{},\"opt_out\":{}",
            json::escape(&self.workload),
            self.weight,
            self.opt_out,
        );
        if let Some(budget) = self.chunk_budget {
            s.push_str(&format!(",\"budget\":{budget}"));
        }
        if let Some(label) = &self.prefer {
            s.push_str(",\"prefer\":");
            s.push_str(&json::escape(label));
        }
        if !self.pins.is_empty() {
            let pins: Vec<String> = self
                .pins
                .iter()
                .map(|(start, pages)| format!("{{\"start\":{start},\"pages\":{pages}}}"))
                .collect();
            s.push_str(&format!(",\"pins\":[{}]", pins.join(",")));
        }
        s.push('}');
        s
    }

    fn from_json(obj: &str) -> Result<TenantJob, ProtoError> {
        let prefer = optional(obj, "prefer", json::str_field)?;
        let pins = match json::field(obj, "pins").and_then(json::items) {
            None => Vec::new(),
            Some(raw) => raw
                .into_iter()
                .map(|p| {
                    let start = json::u64_field(p, "start").ok_or_else(|| bad("pins[].start"))?;
                    let pages = json::u64_field(p, "pages").ok_or_else(|| bad("pins[].pages"))?;
                    Ok((start, pages))
                })
                .collect::<Result<Vec<_>, ProtoError>>()?,
        };
        Ok(TenantJob {
            workload: json::str_field(obj, "workload").ok_or_else(|| bad("tenants[].workload"))?,
            weight: u32_field(obj, "weight").ok_or_else(|| bad("tenants[].weight"))?,
            chunk_budget: optional(obj, "budget", usize_field)?,
            prefer,
            opt_out: json::bool_field(obj, "opt_out").ok_or_else(|| bad("tenants[].opt_out"))?,
            pins,
        })
    }
}

/// A deterministic fault plan on the wire: a plan seed plus per-site
/// probabilities in thousandths, keyed by the sites' stable trace tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The plan's decision seed (decorrelated from the run seed).
    pub seed: u64,
    /// `(site, probability in thousandths)` rules; unlisted sites never
    /// inject.
    pub rules: Vec<(InjectSite, u16)>,
}

impl FaultSpec {
    fn to_json(&self) -> String {
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|(site, prob)| format!("{{\"site\":\"{}\",\"prob\":{prob}}}", site.as_str()))
            .collect();
        format!("{{\"seed\":{},\"rules\":[{}]}}", self.seed, rules.join(","))
    }

    fn from_json(obj: &str) -> Result<FaultSpec, ProtoError> {
        let seed = json::u64_field(obj, "seed").ok_or_else(|| bad("fault.seed"))?;
        let raw_rules = json::field(obj, "rules")
            .and_then(json::items)
            .ok_or_else(|| bad("fault.rules"))?;
        let mut rules = Vec::with_capacity(raw_rules.len());
        for raw in raw_rules {
            let site = json::str_field(raw, "site")
                .as_deref()
                .and_then(InjectSite::parse)
                .ok_or_else(|| bad("fault.rules[].site"))?;
            let prob = json::u64_field(raw, "prob")
                .and_then(|p| u16::try_from(p).ok())
                .ok_or_else(|| bad("fault.rules[].prob"))?;
            rules.push((site, prob));
        }
        Ok(FaultSpec { seed, rules })
    }
}

/// The durable-journal slice of a [`ServiceInfo`] — present only when
/// the daemon runs with `--journal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalInfo {
    /// Records appended to the journal since it was opened (accepts,
    /// requeues and terminal marks combined).
    pub records: u64,
    /// Jobs replayed from the journal when the daemon last started.
    pub replayed: u64,
    /// Jobs currently accepted but not yet terminal — what a crash
    /// right now would replay.
    pub pending: u64,
}

impl JournalInfo {
    fn to_json(self) -> String {
        format!(
            "{{\"records\":{},\"replayed\":{},\"pending\":{}}}",
            self.records, self.replayed, self.pending
        )
    }

    fn from_json(obj: &str) -> Result<JournalInfo, ProtoError> {
        Ok(JournalInfo {
            records: json::u64_field(obj, "records").ok_or_else(|| bad("journal.records"))?,
            replayed: json::u64_field(obj, "replayed").ok_or_else(|| bad("journal.replayed"))?,
            pending: json::u64_field(obj, "pending").ok_or_else(|| bad("journal.pending"))?,
        })
    }
}

/// A snapshot of the service itself, attached to `Status` and `Jobs`
/// answers so operators see pool health alongside job state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceInfo {
    /// Whether workers are paused (jobs queue but none execute).
    pub paused: bool,
    /// Worker threads (= shards).
    pub workers: usize,
    /// Maximum queued jobs per shard.
    pub queue_depth: usize,
    /// Current queued occupancy of each shard, in shard order.
    pub queues: Vec<u64>,
    /// Durable-journal state, when the daemon journals accepted jobs.
    pub journal: Option<JournalInfo>,
}

impl ServiceInfo {
    fn to_json(&self) -> String {
        let queues: Vec<String> = self.queues.iter().map(u64::to_string).collect();
        let mut s = format!(
            "{{\"paused\":{},\"workers\":{},\"queue_depth\":{},\"queues\":[{}]",
            self.paused,
            self.workers,
            self.queue_depth,
            queues.join(",")
        );
        if let Some(journal) = self.journal {
            s.push_str(",\"journal\":");
            s.push_str(&journal.to_json());
        }
        s.push('}');
        s
    }

    fn from_json(obj: &str) -> Result<ServiceInfo, ProtoError> {
        let queues = json::field(obj, "queues")
            .and_then(json::items)
            .ok_or_else(|| bad("service.queues"))?
            .into_iter()
            .map(|raw| {
                raw.trim()
                    .parse::<u64>()
                    .map_err(|_| bad("service.queues[]"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServiceInfo {
            paused: json::bool_field(obj, "paused").ok_or_else(|| bad("service.paused"))?,
            workers: usize_field(obj, "workers").ok_or_else(|| bad("service.workers"))?,
            queue_depth: usize_field(obj, "queue_depth")
                .ok_or_else(|| bad("service.queue_depth"))?,
            queues,
            journal: match json::field(obj, "journal") {
                None => None,
                Some(raw) => Some(JournalInfo::from_json(raw)?),
            },
        })
    }
}

/// A point-in-time progress report for one job, fed by the simulator's
/// per-tick hook. All zeros until the job's first daemon tick; pinned
/// at its final sample counts once it settles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Daemon ticks executed so far (load, settle and measure phases).
    pub ticks: u64,
    /// Measured accesses completed so far.
    pub samples_done: u64,
    /// Total accesses the measurement phase will perform.
    pub samples_total: u64,
    /// Current 1GB free-memory fragmentation index, in thousandths.
    pub fmfi_milli: u64,
}

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for its shard's worker.
    Queued,
    /// Executing on a worker thread.
    Running,
    /// Finished; its result is available.
    Done,
    /// The simulation failed or panicked; the error text is available.
    Failed,
    /// Cancelled while still queued; it will never run.
    Cancelled,
}

impl JobState {
    /// All states, for table-driven parsing and tests.
    pub const ALL: [JobState; 5] = [
        JobState::Queued,
        JobState::Running,
        JobState::Done,
        JobState::Failed,
        JobState::Cancelled,
    ];

    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Stable lowercase wire tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire tag produced by [`as_str`](Self::as_str).
    #[must_use]
    pub fn parse(s: &str) -> Option<JobState> {
        JobState::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a job entered the service — directly from a client, or
/// re-admitted from the durable journal after a restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOrigin {
    /// Submitted by a connected client.
    Client,
    /// Replayed from the journal: it was accepted before a crash and
    /// re-executes under a fresh id.
    Journal,
}

impl JobOrigin {
    /// All origins, for table-driven parsing and tests.
    pub const ALL: [JobOrigin; 2] = [JobOrigin::Client, JobOrigin::Journal];

    /// Stable lowercase wire tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobOrigin::Client => "client",
            JobOrigin::Journal => "journal",
        }
    }

    /// Parses a wire tag produced by [`as_str`](Self::as_str).
    #[must_use]
    pub fn parse(s: &str) -> Option<JobOrigin> {
        JobOrigin::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for JobOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One row of a `list` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSummary {
    /// The job's id.
    pub id: u64,
    /// Its current state.
    pub state: JobState,
    /// The cell it runs (workload name).
    pub workload: String,
    /// The cell it runs (policy name as submitted).
    pub policy: String,
    /// The idempotency key the submitter attached, if any.
    pub key: Option<String>,
    /// Whether the job came from a client or a journal replay.
    pub origin: JobOrigin,
}

impl JobSummary {
    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"id\":{},\"state\":\"{}\",\"workload\":{},\"policy\":{}",
            self.id,
            self.state.as_str(),
            json::escape(&self.workload),
            json::escape(&self.policy),
        );
        if let Some(key) = &self.key {
            s.push_str(",\"key\":");
            s.push_str(&json::escape(key));
        }
        s.push_str(&format!(",\"origin\":\"{}\"}}", self.origin.as_str()));
        s
    }

    fn from_json(obj: &str) -> Result<JobSummary, ProtoError> {
        Ok(JobSummary {
            id: json::u64_field(obj, "id").ok_or_else(|| bad("jobs[].id"))?,
            state: json::str_field(obj, "state")
                .as_deref()
                .and_then(JobState::parse)
                .ok_or_else(|| bad("jobs[].state"))?,
            workload: json::str_field(obj, "workload").ok_or_else(|| bad("jobs[].workload"))?,
            policy: json::str_field(obj, "policy").ok_or_else(|| bad("jobs[].policy"))?,
            key: optional(obj, "key", json::str_field)?,
            origin: json::str_field(obj, "origin")
                .as_deref()
                .and_then(JobOrigin::parse)
                .ok_or_else(|| bad("jobs[].origin"))?,
        })
    }
}

/// Bytes mapped at one ladder rung, keyed by the job geometry's
/// size-class label — the v5 wire shape that lets one result schema
/// describe any architecture's ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungRow {
    /// The rung's size-class label (`"4KB"`, `"2MB"`, `"64KB-napot"`, ...).
    pub size: String,
    /// Bytes mapped at this rung at measurement end.
    pub bytes: u64,
}

impl RungRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"size\":{},\"bytes\":{}}}",
            json::escape(&self.size),
            self.bytes
        )
    }

    fn from_json(obj: &str) -> Result<RungRow, ProtoError> {
        Ok(RungRow {
            size: json::str_field(obj, "size").ok_or_else(|| bad("rungs[].size"))?,
            bytes: json::u64_field(obj, "bytes").ok_or_else(|| bad("rungs[].bytes"))?,
        })
    }
}

fn rungs_to_json(rows: &[RungRow]) -> String {
    let rows: Vec<String> = rows.iter().map(RungRow::to_json).collect();
    format!("[{}]", rows.join(","))
}

fn rungs_from_json(obj: &str, key: &str) -> Result<Vec<RungRow>, ProtoError> {
    json::field(obj, key)
        .and_then(json::items)
        .ok_or_else(|| bad("rungs"))?
        .into_iter()
        .map(RungRow::from_json)
        .collect()
}

/// What a finished job measured — the subset of a `Measurement` that
/// serializes: the versioned snapshot plus the translation headlines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// Sampled accesses.
    pub samples: u64,
    /// TLB accesses among them (all hits and misses).
    pub tlb_accesses: u64,
    /// Page walks (full TLB misses).
    pub walks: u64,
    /// Cycles spent translating.
    pub walk_cycles: u64,
    /// Per-rung mapped-bytes rows in ladder order, keyed by size-class
    /// label.
    pub rungs: Vec<RungRow>,
    /// Events the ring tracer dropped (0 when tracing was off or lossless).
    pub trace_dropped: u64,
    /// Lines written to the job's `trace_out` file, when one was set.
    pub trace_lines: Option<u64>,
    /// Invariant violations the per-tick audit collected (always 0 when
    /// the job did not set `audit`; anything nonzero under a co-located
    /// job is an isolation violation).
    pub violations: u64,
    /// Per-tenant rows in tenant order — one per tenant, including
    /// single-tenant jobs (whose one row equals the pooled headlines).
    pub tenants: Vec<TenantRow>,
    /// The full memory-management counter snapshot.
    pub snapshot: StatsSnapshot,
}

/// One tenant's share of a finished job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRow {
    /// The tenant's index (0 = the job's primary workload).
    pub tenant: u32,
    /// The workload this tenant ran.
    pub workload: String,
    /// Accesses sampled from this tenant.
    pub samples: u64,
    /// Page walks among them.
    pub walks: u64,
    /// Cycles this tenant spent translating.
    pub walk_cycles: u64,
    /// Per-rung mapped-bytes rows for this tenant, in ladder order.
    pub rungs: Vec<RungRow>,
    /// The tenant's top-rung fragmentation experience in thousandths
    /// (the fraction of its resident bytes not top-rung-backed).
    pub fmfi_milli: u64,
    /// Faults attributed to this tenant.
    pub faults: u64,
}

impl TenantRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"tenant\":{},\"workload\":{},\"samples\":{},\"walks\":{},\
             \"walk_cycles\":{},\"rungs\":{},\"fmfi_milli\":{},\
             \"faults\":{}}}",
            self.tenant,
            json::escape(&self.workload),
            self.samples,
            self.walks,
            self.walk_cycles,
            rungs_to_json(&self.rungs),
            self.fmfi_milli,
            self.faults,
        )
    }

    fn from_json(obj: &str) -> Result<TenantRow, ProtoError> {
        let req = |key: &'static str| json::u64_field(obj, key).ok_or(ProtoError::Malformed(key));
        Ok(TenantRow {
            tenant: u32_field(obj, "tenant").ok_or_else(|| bad("tenants[].tenant"))?,
            workload: json::str_field(obj, "workload").ok_or_else(|| bad("tenants[].workload"))?,
            samples: req("samples")?,
            walks: req("walks")?,
            walk_cycles: req("walk_cycles")?,
            rungs: rungs_from_json(obj, "rungs")?,
            fmfi_milli: req("fmfi_milli")?,
            faults: req("faults")?,
        })
    }
}

impl JobResult {
    fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"samples\":{},\"tlb_accesses\":{},\"walks\":{},\"walk_cycles\":{},\
             \"rungs\":{},\"trace_dropped\":{}",
            self.samples,
            self.tlb_accesses,
            self.walks,
            self.walk_cycles,
            rungs_to_json(&self.rungs),
            self.trace_dropped,
        );
        if let Some(lines) = self.trace_lines {
            s.push_str(&format!(",\"trace_lines\":{lines}"));
        }
        s.push_str(&format!(",\"violations\":{}", self.violations));
        let rows: Vec<String> = self.tenants.iter().map(TenantRow::to_json).collect();
        s.push_str(&format!(",\"tenants\":[{}]", rows.join(",")));
        s.push_str(",\"snapshot\":");
        s.push_str(&snapshot_to_json(&self.snapshot));
        s.push('}');
        s
    }

    fn from_json(obj: &str) -> Result<JobResult, ProtoError> {
        Ok(JobResult {
            samples: json::u64_field(obj, "samples").ok_or_else(|| bad("result.samples"))?,
            tlb_accesses: json::u64_field(obj, "tlb_accesses")
                .ok_or_else(|| bad("result.tlb_accesses"))?,
            walks: json::u64_field(obj, "walks").ok_or_else(|| bad("result.walks"))?,
            walk_cycles: json::u64_field(obj, "walk_cycles")
                .ok_or_else(|| bad("result.walk_cycles"))?,
            rungs: rungs_from_json(obj, "rungs")?,
            // Additive field: absent (older encoder) means no drops; a
            // present-but-malformed value still fails loudly.
            trace_dropped: optional(obj, "trace_dropped", json::u64_field)?.unwrap_or(0),
            trace_lines: optional(obj, "trace_lines", json::u64_field)?,
            violations: json::u64_field(obj, "violations")
                .ok_or_else(|| bad("result.violations"))?,
            tenants: json::field(obj, "tenants")
                .and_then(json::items)
                .ok_or_else(|| bad("result.tenants"))?
                .into_iter()
                .map(TenantRow::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            snapshot: snapshot_from_json(
                json::field(obj, "snapshot").ok_or_else(|| bad("result.snapshot"))?,
            )?,
        })
    }
}

/// Serializes a [`StatsSnapshot`] with its own schema version embedded;
/// the decoder refuses snapshots from a different schema.
#[must_use]
pub fn snapshot_to_json(s: &StatsSnapshot) -> String {
    let arr = |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    format!(
        "{{\"version\":{},\"faults\":[{}],\"fault_ns\":[{}],\
         \"giant_attempts_fault\":{},\"giant_failures_fault\":{},\
         \"giant_attempts_promo\":{},\"giant_failures_promo\":{},\
         \"promotions\":[{}],\"demotions\":[{}],\
         \"compaction_bytes_copied\":{},\"promotion_bytes_copied\":{},\
         \"pv_bytes_exchanged\":{},\"compaction_attempts\":{},\
         \"compaction_successes\":{},\"daemon_ns\":{},\"bloat_pages\":{},\
         \"bloat_recovered_pages\":{},\"giant_blocks_prezeroed\":{},\
         \"injected_faults\":[{}],\"promotions_deferred\":{},\
         \"pv_fallbacks\":{},\"pv_fallback_bytes\":{}}}",
        s.version,
        arr(&s.faults),
        arr(&s.fault_ns),
        s.giant_attempts_fault,
        s.giant_failures_fault,
        s.giant_attempts_promo,
        s.giant_failures_promo,
        arr(&s.promotions),
        arr(&s.demotions),
        s.compaction_bytes_copied,
        s.promotion_bytes_copied,
        s.pv_bytes_exchanged,
        s.compaction_attempts,
        s.compaction_successes,
        s.daemon_ns,
        s.bloat_pages,
        s.bloat_recovered_pages,
        s.giant_blocks_prezeroed,
        arr(&s.injected_faults),
        s.promotions_deferred,
        s.pv_fallbacks,
        s.pv_fallback_bytes,
    )
}

/// Decodes a snapshot serialized by [`snapshot_to_json`].
///
/// # Errors
///
/// [`ProtoError::Version`] when the embedded snapshot schema version is
/// not this build's [`SNAPSHOT_VERSION`]; [`ProtoError::Malformed`] on
/// any missing or unparsable field.
pub fn snapshot_from_json(obj: &str) -> Result<StatsSnapshot, ProtoError> {
    let version = u32_field(obj, "version").ok_or_else(|| bad("snapshot.version"))?;
    if version != SNAPSHOT_VERSION {
        return Err(ProtoError::Version { got: version });
    }
    let req = |key: &'static str| json::u64_field(obj, key).ok_or(ProtoError::Malformed(key));
    Ok(StatsSnapshot {
        version,
        faults: json::u64_array_field(obj, "faults").ok_or_else(|| bad("snapshot.faults"))?,
        fault_ns: json::u64_array_field(obj, "fault_ns").ok_or_else(|| bad("snapshot.fault_ns"))?,
        giant_attempts_fault: req("giant_attempts_fault")?,
        giant_failures_fault: req("giant_failures_fault")?,
        giant_attempts_promo: req("giant_attempts_promo")?,
        giant_failures_promo: req("giant_failures_promo")?,
        promotions: json::u64_array_field(obj, "promotions")
            .ok_or_else(|| bad("snapshot.promotions"))?,
        demotions: json::u64_array_field(obj, "demotions")
            .ok_or_else(|| bad("snapshot.demotions"))?,
        compaction_bytes_copied: req("compaction_bytes_copied")?,
        promotion_bytes_copied: req("promotion_bytes_copied")?,
        pv_bytes_exchanged: req("pv_bytes_exchanged")?,
        compaction_attempts: req("compaction_attempts")?,
        compaction_successes: req("compaction_successes")?,
        daemon_ns: req("daemon_ns")?,
        bloat_pages: req("bloat_pages")?,
        bloat_recovered_pages: req("bloat_recovered_pages")?,
        giant_blocks_prezeroed: req("giant_blocks_prezeroed")?,
        injected_faults: json::u64_array_field(obj, "injected_faults")
            .ok_or_else(|| bad("snapshot.injected_faults"))?,
        promotions_deferred: req("promotions_deferred")?,
        pv_fallbacks: req("pv_fallbacks")?,
        pv_fallback_bytes: req("pv_fallback_bytes")?,
    })
}

/// A client-to-daemon message.
//
// `Submit` dwarfs the id-only variants, but requests are built once per
// protocol round-trip on a cold path; boxing the spec would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job; answered with `Submitted` or `Error(queue_full)`.
    Submit(JobSpec),
    /// Non-blocking state query.
    Status {
        /// The job to query.
        id: u64,
    },
    /// Blocking result fetch: answered once the job reaches a terminal
    /// state.
    Result {
        /// The job to wait for.
        id: u64,
    },
    /// Cancel a queued job (running jobs cannot be interrupted).
    Cancel {
        /// The job to cancel.
        id: u64,
    },
    /// List all jobs the daemon knows about.
    List,
    /// Fetch the daemon's live metrics as a Prometheus text body.
    Metrics,
    /// Fetch a job's latest in-flight progress report.
    Progress {
        /// The job to query.
        id: u64,
    },
    /// Drain queued and in-flight jobs, then exit.
    Shutdown,
}

impl Request {
    /// Encodes as one line of JSON (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let v = PROTO_VERSION;
        match self {
            Request::Submit(job) => {
                format!("{{\"v\":{v},\"op\":\"submit\",\"job\":{}}}", job.to_json())
            }
            Request::Status { id } => format!("{{\"v\":{v},\"op\":\"status\",\"id\":{id}}}"),
            Request::Result { id } => format!("{{\"v\":{v},\"op\":\"result\",\"id\":{id}}}"),
            Request::Cancel { id } => format!("{{\"v\":{v},\"op\":\"cancel\",\"id\":{id}}}"),
            Request::List => format!("{{\"v\":{v},\"op\":\"list\"}}"),
            Request::Metrics => format!("{{\"v\":{v},\"op\":\"metrics\"}}"),
            Request::Progress { id } => format!("{{\"v\":{v},\"op\":\"progress\",\"id\":{id}}}"),
            Request::Shutdown => format!("{{\"v\":{v},\"op\":\"shutdown\"}}"),
        }
    }

    /// Decodes one line produced by [`to_jsonl`](Self::to_jsonl).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Version`] for any version other than
    /// [`PROTO_VERSION`]; [`ProtoError::Malformed`] otherwise.
    pub fn parse_jsonl(line: &str) -> Result<Request, ProtoError> {
        check_version(line)?;
        let id =
            |field: &'static str| json::u64_field(line, "id").ok_or(ProtoError::Malformed(field));
        match json::str_field(line, "op")
            .ok_or_else(|| bad("op"))?
            .as_str()
        {
            "submit" => Ok(Request::Submit(JobSpec::from_json(
                json::field(line, "job").ok_or_else(|| bad("job"))?,
            )?)),
            "status" => Ok(Request::Status {
                id: id("status.id")?,
            }),
            "result" => Ok(Request::Result {
                id: id("result.id")?,
            }),
            "cancel" => Ok(Request::Cancel {
                id: id("cancel.id")?,
            }),
            "list" => Ok(Request::List),
            "metrics" => Ok(Request::Metrics),
            "progress" => Ok(Request::Progress {
                id: id("progress.id")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            _ => Err(bad("op")),
        }
    }
}

/// Typed error codes a daemon can answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The target shard's admission queue is at capacity; resubmit later.
    QueueFull,
    /// No job with the given id.
    UnknownJob,
    /// The request was understood but its content is invalid (bad
    /// workload/policy name, malformed fault plan, job not cancellable).
    BadRequest,
    /// The daemon is draining and accepts no new jobs.
    ShuttingDown,
    /// The job ran and failed; the message carries the failure text.
    JobFailed,
}

impl ErrorCode {
    /// All codes, for table-driven parsing and tests.
    pub const ALL: [ErrorCode; 5] = [
        ErrorCode::QueueFull,
        ErrorCode::UnknownJob,
        ErrorCode::BadRequest,
        ErrorCode::ShuttingDown,
        ErrorCode::JobFailed,
    ];

    /// Stable wire tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::JobFailed => "job_failed",
        }
    }

    /// Parses a wire tag produced by [`as_str`](Self::as_str).
    #[must_use]
    pub fn parse(s: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A daemon-to-client message.
// The size skew comes from `Result`'s embedded snapshot; a response is
// built once per round-trip and immediately serialized or consumed, so
// boxing would buy nothing but API noise.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was admitted under this id.
    Submitted {
        /// The new job's id.
        id: u64,
    },
    /// Answer to `Status`.
    Status {
        /// The queried job.
        id: u64,
        /// Its state at answer time.
        state: JobState,
        /// Pool health at answer time.
        service: ServiceInfo,
    },
    /// Answer to `Result` for a job that finished successfully.
    Result {
        /// The finished job.
        id: u64,
        /// What it measured.
        result: JobResult,
    },
    /// The job was cancelled while queued.
    Cancelled {
        /// The cancelled job.
        id: u64,
    },
    /// Answer to `List`.
    Jobs {
        /// Every known job, in submission order.
        jobs: Vec<JobSummary>,
        /// Pool health at answer time.
        service: ServiceInfo,
    },
    /// Answer to `Metrics`.
    Metrics {
        /// The Prometheus text body the daemon's registry rendered.
        text: String,
    },
    /// Answer to `Progress`.
    Progress {
        /// The queried job.
        id: u64,
        /// Its state at answer time.
        state: JobState,
        /// Its latest progress report (all zeros for a job that has not
        /// started ticking yet).
        progress: JobProgress,
    },
    /// Acknowledges `Shutdown`; the daemon drains and exits after this.
    ShuttingDown,
    /// A typed failure.
    Error {
        /// The machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes as one line of JSON (no trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let v = PROTO_VERSION;
        match self {
            Response::Submitted { id } => {
                format!("{{\"v\":{v},\"ok\":\"submitted\",\"id\":{id}}}")
            }
            Response::Status { id, state, service } => format!(
                "{{\"v\":{v},\"ok\":\"status\",\"id\":{id},\"state\":\"{}\",\"service\":{}}}",
                state.as_str(),
                service.to_json()
            ),
            Response::Result { id, result } => format!(
                "{{\"v\":{v},\"ok\":\"result\",\"id\":{id},\"result\":{}}}",
                result.to_json()
            ),
            Response::Cancelled { id } => {
                format!("{{\"v\":{v},\"ok\":\"cancelled\",\"id\":{id}}}")
            }
            Response::Jobs { jobs, service } => {
                let rows: Vec<String> = jobs.iter().map(JobSummary::to_json).collect();
                format!(
                    "{{\"v\":{v},\"ok\":\"jobs\",\"jobs\":[{}],\"service\":{}}}",
                    rows.join(","),
                    service.to_json()
                )
            }
            Response::Metrics { text } => format!(
                "{{\"v\":{v},\"ok\":\"metrics\",\"text\":{}}}",
                json::escape(text)
            ),
            Response::Progress {
                id,
                state,
                progress,
            } => format!(
                "{{\"v\":{v},\"ok\":\"progress\",\"id\":{id},\"state\":\"{}\",\
                 \"ticks\":{},\"samples_done\":{},\"samples_total\":{},\"fmfi_milli\":{}}}",
                state.as_str(),
                progress.ticks,
                progress.samples_done,
                progress.samples_total,
                progress.fmfi_milli
            ),
            Response::ShuttingDown => format!("{{\"v\":{v},\"ok\":\"shutting_down\"}}"),
            Response::Error { code, message } => format!(
                "{{\"v\":{v},\"err\":\"{}\",\"msg\":{}}}",
                code.as_str(),
                json::escape(message)
            ),
        }
    }

    /// Decodes one line produced by [`to_jsonl`](Self::to_jsonl).
    ///
    /// # Errors
    ///
    /// [`ProtoError::Version`] for any version other than
    /// [`PROTO_VERSION`]; [`ProtoError::Malformed`] otherwise.
    pub fn parse_jsonl(line: &str) -> Result<Response, ProtoError> {
        check_version(line)?;
        if let Some(code) = json::str_field(line, "err") {
            return Ok(Response::Error {
                code: ErrorCode::parse(&code).ok_or_else(|| bad("err"))?,
                message: json::str_field(line, "msg").ok_or_else(|| bad("msg"))?,
            });
        }
        let id =
            |field: &'static str| json::u64_field(line, "id").ok_or(ProtoError::Malformed(field));
        match json::str_field(line, "ok")
            .ok_or_else(|| bad("ok"))?
            .as_str()
        {
            "submitted" => Ok(Response::Submitted {
                id: id("submitted.id")?,
            }),
            "status" => Ok(Response::Status {
                id: id("status.id")?,
                state: json::str_field(line, "state")
                    .as_deref()
                    .and_then(JobState::parse)
                    .ok_or_else(|| bad("state"))?,
                service: ServiceInfo::from_json(
                    json::field(line, "service").ok_or_else(|| bad("service"))?,
                )?,
            }),
            "result" => Ok(Response::Result {
                id: id("result.id")?,
                result: JobResult::from_json(
                    json::field(line, "result").ok_or_else(|| bad("result"))?,
                )?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                id: id("cancelled.id")?,
            }),
            "jobs" => {
                let raw = json::field(line, "jobs")
                    .and_then(json::items)
                    .ok_or_else(|| bad("jobs"))?;
                let jobs = raw
                    .into_iter()
                    .map(JobSummary::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Jobs {
                    jobs,
                    service: ServiceInfo::from_json(
                        json::field(line, "service").ok_or_else(|| bad("service"))?,
                    )?,
                })
            }
            "metrics" => Ok(Response::Metrics {
                text: json::str_field(line, "text").ok_or_else(|| bad("text"))?,
            }),
            "progress" => {
                let num = |field: &'static str, key: &str| {
                    json::u64_field(line, key).ok_or(ProtoError::Malformed(field))
                };
                Ok(Response::Progress {
                    id: id("progress.id")?,
                    state: json::str_field(line, "state")
                        .as_deref()
                        .and_then(JobState::parse)
                        .ok_or_else(|| bad("state"))?,
                    progress: JobProgress {
                        ticks: num("progress.ticks", "ticks")?,
                        samples_done: num("progress.samples_done", "samples_done")?,
                        samples_total: num("progress.samples_total", "samples_total")?,
                        fmfi_milli: num("progress.fmfi_milli", "fmfi_milli")?,
                    },
                })
            }
            "shutting_down" => Ok(Response::ShuttingDown),
            _ => Err(bad("ok")),
        }
    }
}

/// Why a protocol line could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The message declares a version this build does not speak.
    Version {
        /// The version the peer sent.
        got: u32,
    },
    /// A required field is missing or unparsable; carries the field's
    /// dotted path.
    Malformed(&'static str),
    /// A blocking wait exceeded its per-operation deadline. Raised on
    /// the client side only — the daemon never answers with this; the
    /// wire simply went quiet for longer than the [`crate::retry::RetryPolicy`]
    /// allows.
    Timeout {
        /// Which operation timed out (`"connect"`, `"request"`,
        /// `"result"`).
        op: &'static str,
        /// The deadline that expired, in milliseconds.
        ms: u64,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Version { got } => write!(
                f,
                "protocol version mismatch: peer speaks v{got}, this build speaks v{PROTO_VERSION}"
            ),
            ProtoError::Malformed(field) => write!(f, "malformed message: bad field {field:?}"),
            ProtoError::Timeout { op, ms } => {
                write!(f, "operation {op:?} exceeded its {ms}ms deadline")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

fn bad(field: &'static str) -> ProtoError {
    ProtoError::Malformed(field)
}

fn check_version(line: &str) -> Result<(), ProtoError> {
    let got = u32_field(line, "v").ok_or_else(|| bad("v"))?;
    if got == PROTO_VERSION {
        Ok(())
    } else {
        Err(ProtoError::Version { got })
    }
}

fn u32_field(obj: &str, key: &str) -> Option<u32> {
    json::u64_field(obj, key).and_then(|v| u32::try_from(v).ok())
}

fn usize_field(obj: &str, key: &str) -> Option<usize> {
    json::u64_field(obj, key).and_then(|v| usize::try_from(v).ok())
}

/// Distinguishes "absent" (Ok(None)) from "present but unparsable"
/// (Err), so a typo'd optional field fails loudly instead of silently
/// reverting to a default.
fn optional<T>(
    obj: &str,
    key: &'static str,
    get: impl Fn(&str, &str) -> Option<T>,
) -> Result<Option<T>, ProtoError> {
    match json::field(obj, key) {
        None | Some("null") => Ok(None),
        Some(_) => get(obj, key).map(Some).ok_or(ProtoError::Malformed(key)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> JobSpec {
        JobSpec {
            workload: "GUPS".to_owned(),
            policy: "Trident".to_owned(),
            scale: 256,
            samples: 8_000,
            seed: 7,
            cell_index: Some(3),
            fragment: true,
            trace_capacity: Some(4_096),
            profile: true,
            fault: Some(FaultSpec {
                seed: 99,
                rules: vec![(InjectSite::Alloc, 100), (InjectSite::PvExchange, 5)],
            }),
            trace_out: Some("out dir/run \"a\".jsonl".to_owned()),
            profile_out: Some("prof.json".to_owned()),
            audit: true,
            key: Some("fig1/GUPS/Trident/3".to_owned()),
            geometry: Some("sv48".to_owned()),
            tenants: vec![
                TenantJob {
                    workload: "Redis".to_owned(),
                    weight: 2,
                    chunk_budget: Some(4),
                    prefer: Some("2MB".to_owned()),
                    opt_out: false,
                    pins: vec![(0, 4_096), (1 << 20, 512)],
                },
                TenantJob::new("XSBench"),
            ],
        }
    }

    fn service_info() -> ServiceInfo {
        ServiceInfo {
            paused: true,
            workers: 2,
            queue_depth: 64,
            queues: vec![3, 0],
            journal: Some(JournalInfo {
                records: 12,
                replayed: 2,
                pending: 1,
            }),
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(full_spec()),
            Request::Submit(JobSpec::new("Redis", "2MB-THP")),
            Request::Status { id: 3 },
            Request::Result { id: u64::MAX },
            Request::Cancel { id: 0 },
            Request::List,
            Request::Metrics,
            Request::Progress { id: 12 },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_jsonl();
            assert_eq!(Request::parse_jsonl(&line), Ok(req), "line: {line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let snapshot = StatsSnapshot {
            faults: [3, 2, 1, 0, 0, 0],
            daemon_ns: u64::MAX,
            ..StatsSnapshot::default()
        };
        let resps = [
            Response::Submitted { id: 1 },
            Response::Status {
                id: 2,
                state: JobState::Running,
                service: service_info(),
            },
            Response::Result {
                id: 3,
                result: JobResult {
                    samples: 8_000,
                    tlb_accesses: 8_000,
                    walks: 120,
                    walk_cycles: 4_200,
                    rungs: vec![
                        RungRow {
                            size: "4KB".to_owned(),
                            bytes: 1,
                        },
                        RungRow {
                            size: "2MB".to_owned(),
                            bytes: 2,
                        },
                        RungRow {
                            size: "1GB".to_owned(),
                            bytes: 3,
                        },
                    ],
                    trace_dropped: 0,
                    trace_lines: Some(17),
                    violations: 0,
                    tenants: vec![
                        TenantRow {
                            tenant: 0,
                            workload: "GUPS".to_owned(),
                            samples: 4_000,
                            walks: 80,
                            walk_cycles: 2_100,
                            rungs: vec![
                                RungRow {
                                    size: "4KB".to_owned(),
                                    bytes: 1,
                                },
                                RungRow {
                                    size: "2MB".to_owned(),
                                    bytes: 2,
                                },
                            ],
                            fmfi_milli: 1_000,
                            faults: 6,
                        },
                        TenantRow {
                            tenant: 1,
                            workload: "Redis".to_owned(),
                            samples: 4_000,
                            walks: 40,
                            walk_cycles: 2_100,
                            rungs: vec![RungRow {
                                size: "1GB".to_owned(),
                                bytes: 3,
                            }],
                            fmfi_milli: 0,
                            faults: 0,
                        },
                    ],
                    snapshot,
                },
            },
            Response::Cancelled { id: 4 },
            Response::Jobs {
                jobs: vec![
                    JobSummary {
                        id: 1,
                        state: JobState::Done,
                        workload: "GUPS".to_owned(),
                        policy: "Trident".to_owned(),
                        key: Some("cell/7".to_owned()),
                        origin: JobOrigin::Client,
                    },
                    JobSummary {
                        id: 2,
                        state: JobState::Queued,
                        workload: "Redis".to_owned(),
                        policy: "4KB".to_owned(),
                        key: None,
                        origin: JobOrigin::Journal,
                    },
                ],
                service: service_info(),
            },
            Response::Jobs {
                jobs: vec![],
                service: ServiceInfo {
                    paused: false,
                    workers: 1,
                    queue_depth: 1,
                    queues: vec![0],
                    journal: None,
                },
            },
            Response::Metrics {
                text: "# TYPE a counter\na{k=\"v\"} 1\n".to_owned(),
            },
            Response::Progress {
                id: 9,
                state: JobState::Running,
                progress: JobProgress {
                    ticks: 41,
                    samples_done: 2_000,
                    samples_total: 120_000,
                    fmfi_milli: 875,
                },
            },
            Response::ShuttingDown,
            Response::Error {
                code: ErrorCode::QueueFull,
                message: "shard 2 at depth 64".to_owned(),
            },
        ];
        for resp in resps {
            let line = resp.to_jsonl();
            assert_eq!(Response::parse_jsonl(&line), Ok(resp), "line: {line}");
        }
    }

    #[test]
    fn unknown_version_is_rejected_not_guessed() {
        let stamp = format!("\"v\":{PROTO_VERSION}");
        let line = Request::List.to_jsonl().replace(&stamp, "\"v\":1");
        assert_eq!(
            Request::parse_jsonl(&line),
            Err(ProtoError::Version { got: 1 })
        );
        // A v4 peer (pre-geometry, fixed three-wide mapped_bytes) must be
        // turned away at the version check, not mis-parsed.
        let line = Request::List.to_jsonl().replace(&stamp, "\"v\":4");
        assert_eq!(
            Request::parse_jsonl(&line),
            Err(ProtoError::Version { got: 4 })
        );
        let line = Response::ShuttingDown
            .to_jsonl()
            .replace(&stamp, "\"v\":99");
        assert_eq!(
            Response::parse_jsonl(&line),
            Err(ProtoError::Version { got: 99 })
        );
    }

    #[test]
    fn absent_trace_dropped_decodes_as_zero() {
        // The field was added after v2 shipped results without it; the
        // decoder must treat absence as "no drops", not as malformed.
        let result = JobResult {
            samples: 10,
            tlb_accesses: 10,
            walks: 1,
            walk_cycles: 35,
            rungs: vec![RungRow {
                size: "4KB".to_owned(),
                bytes: 1,
            }],
            trace_dropped: 0,
            trace_lines: None,
            violations: 0,
            tenants: vec![],
            snapshot: StatsSnapshot::default(),
        };
        let line = Response::Result { id: 1, result }.to_jsonl();
        let without = line.replace(",\"trace_dropped\":0", "");
        assert_ne!(line, without, "the field must have been present");
        match Response::parse_jsonl(&without).unwrap() {
            Response::Result { result, .. } => assert_eq!(result.trace_dropped, 0),
            other => panic!("expected Result, got {other:?}"),
        }
        // Present but unparsable still fails loudly.
        let mangled = line.replace(",\"trace_dropped\":0", ",\"trace_dropped\":\"x\"");
        assert_eq!(
            Response::parse_jsonl(&mangled),
            Err(ProtoError::Malformed("trace_dropped"))
        );
    }

    #[test]
    fn snapshot_schema_version_is_checked() {
        let snap = StatsSnapshot::default();
        let json = snapshot_to_json(&snap);
        assert_eq!(snapshot_from_json(&json), Ok(snap));
        let stale = json.replace(&format!("\"version\":{SNAPSHOT_VERSION}"), "\"version\":1");
        assert_eq!(
            snapshot_from_json(&stale),
            Err(ProtoError::Version { got: 1 })
        );
    }

    #[test]
    fn present_but_malformed_optionals_fail_loudly() {
        let good = Request::Submit(JobSpec::new("GUPS", "Trident")).to_jsonl();
        let bad_cell = good.replace("\"fragment\"", "\"cell\":\"x\",\"fragment\"");
        assert_eq!(
            Request::parse_jsonl(&bad_cell),
            Err(ProtoError::Malformed("cell"))
        );
        let bad_key = good.replace("\"fragment\"", "\"key\":7,\"fragment\"");
        assert_eq!(
            Request::parse_jsonl(&bad_key),
            Err(ProtoError::Malformed("key"))
        );
    }

    #[test]
    fn timeout_error_displays_op_and_deadline() {
        let err = ProtoError::Timeout {
            op: "result",
            ms: 120_000,
        };
        assert_eq!(
            err.to_string(),
            "operation \"result\" exceeded its 120000ms deadline"
        );
    }
}
