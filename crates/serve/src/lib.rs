//! Long-lived job service for the Trident simulator.
//!
//! Everything the repository can measure — any workload × policy cell,
//! with fragmentation, tracing, profiling and fault plans — becomes a
//! *job*: a value of [`proto::JobSpec`] submitted over a versioned
//! line-JSON protocol, executed on a sharded worker pool, and answered
//! with a [`proto::JobResult`] carrying the full versioned
//! [`StatsSnapshot`](trident_core::StatsSnapshot).
//!
//! The layering, bottom up:
//!
//! - [`json`]: nesting-aware field extraction for the wire format;
//! - [`proto`]: the versioned request/response vocabulary
//!   ([`proto::PROTO_VERSION`]); unknown versions are rejected, never
//!   guessed;
//! - [`job`]: `JobSpec` → `SimConfig` → one deterministic run — the
//!   *single* execution path shared by daemon workers and local
//!   `tridentctl run`, which is what makes a socket-submitted cell
//!   bit-identical to a direct `System` run at any worker count;
//! - [`service`]: the sharded pool — bounded per-shard admission
//!   queues (`queue_full` backpressure), non-blocking status, blocking
//!   results, cancellation of queued jobs, pause/resume, and draining
//!   shutdown;
//! - [`journal`]: the crash-durable job journal — an fsync'd
//!   append-only WAL of accepted specs and terminal marks, replayed on
//!   restart so accepted-but-unfinished jobs re-execute;
//! - [`server`] / [`client`]: TCP and stdin framing, and the blocking
//!   client `tridentctl --connect` uses;
//! - [`retry`]: [`retry::RetryPolicy`] — bounded attempts,
//!   deterministic jittered backoff, and the per-operation deadlines
//!   that turn every blocking wait into a typed timeout;
//! - [`fleet`]: [`fleet::FleetClient`] — fans a grid across N daemons
//!   with failover and hedging, safe because `derive_cell_seed` makes
//!   every cell's result a pure function of its spec;
//! - [`metrics`] / [`http`]: the observability plane — a lock-light
//!   [`metrics::DaemonMetrics`] registry updated at every job
//!   transition and per-tick heartbeat, rendered to Prometheus text
//!   and served by a dependency-free `GET /metrics` + `GET /healthz`
//!   listener ([`http::serve_metrics`]).
//!
//! # Examples
//!
//! ```
//! use trident_serve::proto::JobSpec;
//! use trident_serve::service::{Service, ServiceConfig, JobWait};
//!
//! let service = Service::start(ServiceConfig { workers: 2, queue_depth: 8, start_paused: false });
//! let mut spec = JobSpec::new("GUPS", "Trident");
//! spec.scale = 256;
//! spec.samples = 1_000;
//! let id = service.submit(spec).unwrap();
//! match service.wait(id) {
//!     Some(JobWait::Done(result)) => assert!(result.samples > 0),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! service.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod client;
pub mod fleet;
pub mod http;
pub mod job;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod retry;
pub mod server;
pub mod service;

pub use client::{Client, ClientError};
pub use fleet::{
    probe_healthz, FleetClient, FleetConfig, FleetError, FleetOutcome, FleetStats, Health,
};
pub use http::{serve_metrics, MetricsHandle};
pub use journal::{Journal, JournalReplay};
pub use metrics::DaemonMetrics;
pub use proto::{
    JobOrigin, JobProgress, JobResult, JobSpec, JobState, JournalInfo, ProtoError, Request,
    Response, ServiceInfo, TenantJob, TenantRow, PROTO_VERSION,
};
pub use retry::RetryPolicy;
pub use server::{serve_lines, serve_tcp, ServerHandle};
pub use service::{JobWait, ReplayReport, Service, ServiceConfig, SubmitError};
