//! Minimal nesting-aware JSON field extraction.
//!
//! The repository speaks hand-rolled line-JSON everywhere (the trace
//! wire format in `trident-obs`, `BENCH_1.json` in the bench gate).
//! Protocol messages are the first place values nest — a submit request
//! embeds a job object, a result response embeds a snapshot object and
//! arrays — so the flat `find(",")`-based scanning the trace format uses
//! is not enough. This module scans with a depth counter and a
//! string-state flag instead: `field` returns the raw text of one
//! top-level key's value, and `items` splits a raw array into element
//! texts. Both are zero-copy.
//!
//! This is deliberately not a general JSON parser: no unicode escapes,
//! no floats (the protocol carries only integers, strings, booleans,
//! arrays and objects), duplicate keys take the first occurrence.

use std::io::BufRead;

/// Upper bound on one protocol line, in bytes. The largest legitimate
/// message — a `result` response embedding a full snapshot and per-
/// tenant rows — is a few kilobytes; 4 MiB leaves three orders of
/// magnitude of headroom while stopping a hostile or corrupted peer
/// from ballooning the reader's buffer without ever sending a newline.
pub const MAX_LINE_BYTES: usize = 1 << 22;

/// What [`read_line_bounded`] found on the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedLine {
    /// One complete line, newline stripped.
    Line(String),
    /// The stream ended cleanly before any byte of a new line.
    Eof,
    /// The line exceeded the byte bound; it was consumed and discarded
    /// through its newline (or EOF), so the stream stays framed.
    Oversized,
}

/// Reads one newline-terminated line without letting a newline-free
/// peer grow the buffer past `max` bytes.
///
/// Unlike `BufRead::read_line`, an over-long line is *drained* rather
/// than buffered: the reader ends positioned at the start of the next
/// line, so a server can answer "line too long" and keep serving.
///
/// # Errors
///
/// Propagates any transport error from the underlying reader, including
/// `WouldBlock`/`TimedOut` from a socket read deadline.
pub fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> std::io::Result<BoundedLine> {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(match (line.is_empty(), oversized) {
                (true, false) => BoundedLine::Eof,
                (_, true) => BoundedLine::Oversized,
                // A final unterminated line still counts: stdin pipes
                // may omit the trailing newline.
                (false, false) => BoundedLine::Line(String::from_utf8_lossy(&line).into_owned()),
            });
        }
        let (taken, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        if !oversized {
            let keep = taken - usize::from(done);
            if line.len() + keep > max {
                oversized = true;
                line.clear();
            } else {
                line.extend_from_slice(&chunk[..keep]);
            }
        }
        reader.consume(taken);
        if done {
            if oversized {
                return Ok(BoundedLine::Oversized);
            }
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(BoundedLine::Line(
                String::from_utf8_lossy(&line).into_owned(),
            ));
        }
    }
}

/// Returns the raw value text of `key` in the top level of the JSON
/// object `obj` (which must start at its opening `{`). The returned
/// slice is trimmed and may itself be an object, array, string, number,
/// boolean or `null`.
#[must_use]
pub fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let obj = obj.trim();
    let body = obj.strip_prefix('{')?.strip_suffix('}')?;
    let mut rest = body;
    loop {
        rest = rest
            .trim_start()
            .strip_prefix(',')
            .unwrap_or(rest)
            .trim_start();
        if rest.is_empty() {
            return None;
        }
        let (found_key, after_key) = take_string(rest)?;
        let after_colon = after_key.trim_start().strip_prefix(':')?;
        let (value, after_value) = take_value(after_colon.trim_start())?;
        if found_key == key {
            return Some(value.trim());
        }
        rest = after_value;
    }
}

/// Splits a raw JSON array (starting at `[`) into the raw texts of its
/// top-level elements.
#[must_use]
pub fn items(array: &str) -> Option<Vec<&str>> {
    let body = array.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let (value, after) = take_value(rest)?;
        out.push(value.trim());
        rest = after.trim_start();
        rest = match rest.strip_prefix(',') {
            // A comma promises another element.
            Some(r) if !r.trim_start().is_empty() => r.trim_start(),
            Some(_) => return None,
            None if rest.is_empty() => rest,
            None => return None,
        };
    }
    Some(out)
}

/// `field` + string decode.
#[must_use]
pub fn str_field(obj: &str, key: &str) -> Option<String> {
    unescape(field(obj, key)?)
}

/// `field` + integer parse (fails on quotes or non-digits).
#[must_use]
pub fn u64_field(obj: &str, key: &str) -> Option<u64> {
    field(obj, key)?.parse().ok()
}

/// `field` + boolean parse.
#[must_use]
pub fn bool_field(obj: &str, key: &str) -> Option<bool> {
    match field(obj, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// `field` + `[u64; N]` parse.
#[must_use]
pub fn u64_array_field<const N: usize>(obj: &str, key: &str) -> Option<[u64; N]> {
    let raw = items(field(obj, key)?)?;
    if raw.len() != N {
        return None;
    }
    let mut out = [0u64; N];
    for (slot, text) in out.iter_mut().zip(raw) {
        *slot = text.parse().ok()?;
    }
    Some(out)
}

/// Encodes a string value, escaping the characters the decoder
/// understands (`"` and `\`, plus newline/tab/CR so a value can never
/// break the one-line framing).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Decodes a quoted string value produced by [`escape`].
#[must_use]
pub fn unescape(raw: &str) -> Option<String> {
    let body = raw.trim().strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Consumes one quoted string starting at `rest[0] == '"'`; returns the
/// decoded content and the remainder after the closing quote.
fn take_string(rest: &str) -> Option<(String, &str)> {
    let end = string_end(rest)?;
    Some((unescape(&rest[..end])?, &rest[end..]))
}

/// Byte index one past the closing quote of the string starting at
/// `rest[0] == '"'`.
fn string_end(rest: &str) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in rest.char_indices().skip(1) {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Some(i + 1);
        }
    }
    None
}

/// Consumes one JSON value (scalar, string, object or array) from the
/// start of `rest`; returns the value text and the remainder.
fn take_value(rest: &str) -> Option<(&str, &str)> {
    let first = rest.chars().next()?;
    if first == '"' {
        let end = string_end(rest)?;
        return Some((&rest[..end], &rest[end..]));
    }
    if first == '{' || first == '[' {
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((&rest[..=i], &rest[i + 1..]));
                    }
                }
                _ => {}
            }
        }
        return None;
    }
    // Scalar: runs to the next top-level comma or end of input.
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    if rest[..end].trim().is_empty() {
        return None;
    }
    Some((&rest[..end], &rest[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_skips_nested_objects_and_arrays() {
        let obj = r#"{"a":{"b":1,"c":[1,2]},"d":[{"e":"}x{"}],"f":7}"#;
        assert_eq!(field(obj, "a"), Some(r#"{"b":1,"c":[1,2]}"#));
        assert_eq!(field(obj, "b"), None, "nested keys are invisible");
        assert_eq!(field(obj, "f"), Some("7"));
        assert_eq!(u64_field(obj, "f"), Some(7));
        assert_eq!(field(obj, "d"), Some(r#"[{"e":"}x{"}]"#));
    }

    #[test]
    fn items_splits_top_level_elements() {
        assert_eq!(items("[1, 2,3]"), Some(vec!["1", "2", "3"]));
        assert_eq!(
            items(r#"[{"a":[1,2]},"x,y"]"#),
            Some(vec![r#"{"a":[1,2]}"#, r#""x,y""#])
        );
        assert_eq!(items("[]"), Some(vec![]));
        assert_eq!(items("[1,]"), None, "trailing comma is malformed");
    }

    #[test]
    fn strings_round_trip_through_escape() {
        for s in [
            "",
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "line\nbreak\ttab",
        ] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
    }

    #[test]
    fn u64_array_field_checks_length() {
        let obj = r#"{"xs":[1,2,3]}"#;
        assert_eq!(u64_array_field::<3>(obj, "xs"), Some([1, 2, 3]));
        assert_eq!(u64_array_field::<2>(obj, "xs"), None);
    }

    #[test]
    fn keys_containing_escapes_match_decoded() {
        let obj = r#"{"we\"ird":5}"#;
        assert_eq!(field(obj, "we\"ird"), Some("5"));
    }

    #[test]
    fn bounded_read_frames_lines_and_eof() {
        let mut input = std::io::Cursor::new(b"first\nsecond\r\nlast".to_vec());
        assert_eq!(
            read_line_bounded(&mut input, 64).unwrap(),
            BoundedLine::Line("first".to_owned())
        );
        assert_eq!(
            read_line_bounded(&mut input, 64).unwrap(),
            BoundedLine::Line("second".to_owned()),
            "CRLF framing strips the carriage return"
        );
        assert_eq!(
            read_line_bounded(&mut input, 64).unwrap(),
            BoundedLine::Line("last".to_owned()),
            "a final unterminated line is still a line"
        );
        assert_eq!(read_line_bounded(&mut input, 64).unwrap(), BoundedLine::Eof);
    }

    #[test]
    fn bounded_read_drains_oversized_lines() {
        let long = "x".repeat(100);
        let mut input = std::io::Cursor::new(format!("{long}\nshort\n").into_bytes());
        assert_eq!(
            read_line_bounded(&mut input, 16).unwrap(),
            BoundedLine::Oversized
        );
        assert_eq!(
            read_line_bounded(&mut input, 16).unwrap(),
            BoundedLine::Line("short".to_owned()),
            "the stream stays framed after an oversized line"
        );
    }

    #[test]
    fn bounded_read_handles_exact_boundary() {
        let mut at = std::io::Cursor::new(b"abcd\n".to_vec());
        assert_eq!(
            read_line_bounded(&mut at, 4).unwrap(),
            BoundedLine::Line("abcd".to_owned()),
            "the newline does not count against the bound"
        );
        let mut over = std::io::Cursor::new(b"abcde\n".to_vec());
        assert_eq!(
            read_line_bounded(&mut over, 4).unwrap(),
            BoundedLine::Oversized
        );
    }
}
