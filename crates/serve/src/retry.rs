//! Deterministic retry policy for everything that blocks on the wire.
//!
//! Every knob a resilient client needs lives in one [`RetryPolicy`]
//! value: how many attempts an operation gets, how long to back off
//! between them, and how long each category of wait may block before it
//! turns into a typed [`ProtoError::Timeout`](crate::proto::ProtoError)
//! instead of hanging forever.
//!
//! Backoff jitter is *seeded*, not sampled: the delay for attempt `n`
//! is a pure function of `(jitter_seed, n)` via the same SplitMix64
//! mixer the fault injectors use. Two clients configured identically
//! retry identically — chaos runs stay replayable down to their sleep
//! schedule.

use std::time::Duration;

use trident_fault::mix64;

use crate::proto::Request;

/// Bounded attempts, jittered exponential backoff and per-operation
/// deadlines for a resilient client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per operation, including the first (≥ 1; 1 = no
    /// retries).
    pub max_attempts: u32,
    /// Backoff before retry 1; doubles each further retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep, jitter included.
    pub backoff_cap: Duration,
    /// Seed for deterministic jitter; same seed → same delays.
    pub jitter_seed: u64,
    /// Deadline for establishing one TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for one non-blocking round-trip (submit, status,
    /// cancel, list, metrics, progress, shutdown).
    pub request_timeout: Duration,
    /// Deadline for one blocking `result` wait — generous, because the
    /// daemon legitimately holds the reply until the job settles.
    pub result_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0,
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(10),
            result_timeout: Duration::from_secs(120),
        }
    }
}

impl RetryPolicy {
    /// The backoff sleep before retry number `attempt` (0 = before the
    /// second try). Exponential from [`backoff_base`](Self::backoff_base)
    /// with up to +50% deterministic jitter, clamped to
    /// [`backoff_cap`](Self::backoff_cap).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base_ms = self.backoff_base.as_millis().min(u128::from(u64::MAX)) as u64;
        let cap_ms = self.backoff_cap.as_millis().min(u128::from(u64::MAX)) as u64;
        let raw = base_ms
            .saturating_mul(1_u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(cap_ms);
        // Jitter in per-mille of the raw delay, 0..=500, a pure function
        // of (seed, attempt) — replayable, but decorrelated across
        // clients that pick different seeds.
        let frac =
            mix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % 501;
        let jittered = raw.saturating_add(raw.saturating_mul(frac) / 1000);
        Duration::from_millis(jittered.min(cap_ms))
    }

    /// The read deadline for one round-trip of `req`: a blocking
    /// `result` wait gets [`result_timeout`](Self::result_timeout),
    /// everything else [`request_timeout`](Self::request_timeout).
    #[must_use]
    pub fn deadline_for(&self, req: &Request) -> Duration {
        match req {
            Request::Result { .. } => self.result_timeout,
            _ => self.request_timeout,
        }
    }

    /// The operation label [`deadline_for`](Self::deadline_for) pairs
    /// with, for `ProtoError::Timeout { op, .. }`.
    #[must_use]
    pub fn op_for(req: &Request) -> &'static str {
        match req {
            Request::Result { .. } => "result",
            _ => "request",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let again = policy;
        for attempt in 0..12 {
            let d = policy.backoff(attempt);
            assert_eq!(d, again.backoff(attempt), "attempt {attempt}");
            assert!(d <= policy.backoff_cap, "attempt {attempt}: {d:?}");
            assert!(d >= policy.backoff_base.min(policy.backoff_cap));
        }
        // Exponential shape below the cap: retry 2's floor doubles
        // retry 1's floor.
        assert!(policy.backoff(1) >= Duration::from_millis(100));
    }

    #[test]
    fn different_seeds_decorrelate_jitter() {
        let a = RetryPolicy {
            jitter_seed: 1,
            ..RetryPolicy::default()
        };
        let b = RetryPolicy {
            jitter_seed: 2,
            ..RetryPolicy::default()
        };
        let distinct = (0..8).any(|n| a.backoff(n) != b.backoff(n));
        assert!(distinct, "eight attempts never diverged");
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let policy = RetryPolicy::default();
        assert_eq!(
            policy.backoff(200),
            policy.backoff_cap.max(policy.backoff(200))
        );
        assert!(policy.backoff(u32::MAX) <= policy.backoff_cap);
    }

    #[test]
    fn deadlines_split_by_operation() {
        let policy = RetryPolicy::default();
        assert_eq!(
            policy.deadline_for(&Request::Result { id: 1 }),
            policy.result_timeout
        );
        assert_eq!(
            policy.deadline_for(&Request::Status { id: 1 }),
            policy.request_timeout
        );
        assert_eq!(RetryPolicy::op_for(&Request::Result { id: 1 }), "result");
        assert_eq!(RetryPolicy::op_for(&Request::List), "request");
    }
}
