//! Job execution: one [`JobSpec`] → one deterministic simulation run →
//! one [`JobResult`].
//!
//! This is the single execution path shared by the daemon's workers and
//! by `tridentctl run` without `--connect`: both call [`execute`], so a
//! cell submitted over a socket is bit-identical to the same cell run
//! locally — there is no second, subtly different config-assembly path
//! to drift.

use std::io::BufWriter;

use trident_core::{FaultPlan, ObsRecorder};
use trident_prof::report::render_json;
use trident_prof::JsonlWriter;
use trident_sim::experiments::ExpOptions;
use trident_sim::{
    derive_cell_seed, scaled_geometry_for, PolicyHint, PolicyKind, RunProgress, SimConfig, System,
    TenantSpec,
};
use trident_types::{PageGeometry, PageSize, Vpn};
use trident_workloads::WorkloadSpec;

use crate::proto::{JobResult, JobSpec, RungRow, TenantRow};

/// Resolves a spec into the pieces a run needs, validating everything
/// that can be validated without running: workload and policy names,
/// scale/samples bounds, fault-plan probabilities, and output-option
/// combinations. The service calls this at submit time so bad requests
/// are rejected synchronously instead of becoming failed jobs.
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn resolve(spec: &JobSpec) -> Result<(SimConfig, PolicyKind, Vec<TenantSpec>), String> {
    let workload = WorkloadSpec::by_name(&spec.workload)
        .ok_or_else(|| format!("unknown workload {:?}", spec.workload))?;
    let kind = PolicyKind::from_name(&spec.policy)
        .ok_or_else(|| format!("unknown policy {:?}", spec.policy))?;
    let arch = match &spec.geometry {
        None => PageGeometry::X86_64,
        Some(name) => PageGeometry::by_name(name).ok_or_else(|| {
            format!(
                "unknown geometry {name:?} (expected one of {})",
                PageGeometry::SHIPPED
                    .iter()
                    .map(|g| format!("{:?}", g.name()))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?,
    };
    // The run's ladder: the architecture, rescaled with the job. Prefer
    // labels resolve against this, so a rung the scale squeezes out is
    // an error at admission, not a silently re-aimed hint.
    let geo = if spec.scale.is_power_of_two() && spec.scale <= 256 {
        scaled_geometry_for(&arch, spec.scale)
    } else {
        arch
    };
    let mut tenants = vec![TenantSpec::new(workload)];
    for t in &spec.tenants {
        let neighbor = WorkloadSpec::by_name(&t.workload)
            .ok_or_else(|| format!("unknown tenant workload {:?}", t.workload))?;
        if t.chunk_budget == Some(0) {
            return Err(format!(
                "tenant {:?}: a budget override must be nonzero",
                t.workload
            ));
        }
        let mut hint = PolicyHint::new();
        for &(start, pages) in &t.pins {
            hint = hint.pin(Vpn::new(start), pages);
        }
        if let Some(label) = &t.prefer {
            let size = resolve_rung(&geo, label).ok_or_else(|| {
                format!(
                    "tenant {:?}: no rung labelled {label:?} on the {} ladder at scale 1/{}",
                    t.workload,
                    geo.name(),
                    spec.scale
                )
            })?;
            hint = hint.prefer(size);
        }
        if t.opt_out {
            hint = hint.opt_out();
        }
        let mut ts = TenantSpec::new(neighbor).weight(t.weight).hint(hint);
        ts.chunk_budget = t.chunk_budget;
        tenants.push(ts);
    }
    if spec.scale == 0 {
        return Err("scale must be at least 1".to_owned());
    }
    if spec.samples == 0 {
        return Err("samples must be at least 1".to_owned());
    }
    if spec.trace_out.is_some() && spec.trace_capacity.is_some() {
        return Err("trace_out streams the full trace; it excludes a ring capacity".to_owned());
    }
    if spec.trace_out.is_some() && (spec.profile || spec.profile_out.is_some()) {
        return Err("trace_out replaces the run's recorder; it excludes profiling".to_owned());
    }

    let opts = ExpOptions {
        scale: spec.scale,
        samples: spec.samples,
        seed: spec
            .cell_index
            .map_or(spec.seed, |cell| derive_cell_seed(spec.seed, cell)),
        threads: 0,
        trace_capacity: spec.trace_capacity,
        profile: spec.profile || spec.profile_out.is_some(),
    };
    let mut config = opts.config();
    config.geo = geo;
    if spec.fragment {
        config = config.fragmented();
    }
    if let Some(fault) = &spec.fault {
        let mut builder = FaultPlan::builder(fault.seed);
        for &(site, prob) in &fault.rules {
            builder = builder.site(site, prob);
        }
        config.fault = Some(
            builder
                .build()
                .map_err(|e| format!("invalid fault plan: {e}"))?,
        );
    }
    config.audit = spec.audit;
    Ok((config, kind, tenants))
}

/// Finds the rung whose size-class label matches `label` on `arch`'s
/// ladder. Scaled geometries keep their architecture's labels, so the
/// lookup is valid for any scale of the same ladder.
fn resolve_rung(arch: &PageGeometry, label: &str) -> Option<PageSize> {
    arch.rungs().find(|&s| arch.label(s) == label)
}

/// Renders a measurement's per-rung mapped-bytes array as wire rows in
/// ladder order, keyed by the geometry's size-class labels.
fn rung_rows(geo: &PageGeometry, mapped: &[u64; trident_types::MAX_RUNGS]) -> Vec<RungRow> {
    geo.rungs()
        .map(|size| RungRow {
            size: geo.label(size),
            bytes: mapped[size.rung()],
        })
        .collect()
}

/// Runs one job to completion and returns its measurement.
///
/// # Errors
///
/// Any [`resolve`] failure, a launch failure (hugetlbfs reservation on
/// fragmented memory), or an I/O failure on the job's output files.
pub fn execute(spec: &JobSpec) -> Result<JobResult, String> {
    execute_with_progress(spec, None)
}

/// [`execute`], with an optional per-tick progress hook installed on the
/// system before it settles. The hook only *reads* simulation state
/// (ticks, samples, the giant-frame FMFI), so installing one cannot
/// perturb the run: results stay bit-identical with or without it.
///
/// # Errors
///
/// Same failure modes as [`execute`].
pub fn execute_with_progress(
    spec: &JobSpec,
    progress: Option<Box<dyn FnMut(RunProgress) + Send>>,
) -> Result<JobResult, String> {
    let (config, kind, tenants) = resolve(spec)?;
    let writer = match &spec.trace_out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
            Some(JsonlWriter::new(Box::new(BufWriter::new(file))))
        }
        None => None,
    };
    let mut builder = System::builder(config).policy(kind);
    for tenant in tenants {
        builder = builder.tenant(tenant);
    }
    if let Some(w) = &writer {
        builder = builder.recorder(ObsRecorder::custom(Box::new(w.clone())));
    }
    let mut system = builder.build().map_err(|e| {
        format!("launch failed: {e} (hugetlbfs reservations fail on fragmented memory)")
    })?;
    if let Some(hook) = progress {
        system.set_progress_hook(hook);
    }
    system.settle();
    let m = system.measure();
    let geo = system.geometry();

    let trace_lines = match (&writer, &spec.trace_out) {
        (Some(w), Some(path)) => Some(
            w.finish()
                .map_err(|e| format!("trace write to {path} failed: {e}"))?,
        ),
        _ => None,
    };
    if let Some(path) = &spec.profile_out {
        let profile = m
            .profile
            .as_deref()
            .ok_or("no live profile despite profile_out")?;
        std::fs::write(path, render_json(profile))
            .map_err(|e| format!("profile write to {path} failed: {e}"))?;
    }

    Ok(JobResult {
        samples: m.samples as u64,
        tlb_accesses: m.tlb.total_accesses(),
        walks: m.walks,
        walk_cycles: m.walk_cycles,
        rungs: rung_rows(&geo, &m.mapped_bytes),
        trace_dropped: m.trace_dropped,
        trace_lines,
        violations: system.violations().len() as u64,
        tenants: m
            .tenants
            .iter()
            .map(|t| TenantRow {
                tenant: t.tenant.raw(),
                workload: t.workload.to_owned(),
                samples: t.samples as u64,
                walks: t.walks,
                walk_cycles: t.walk_cycles,
                rungs: rung_rows(&geo, &t.mapped_bytes),
                fmfi_milli: (t.fmfi_giant * 1000.0).round() as u64,
                faults: t.snapshot.total_faults(),
            })
            .collect(),
        snapshot: m.snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::FaultSpec;
    use trident_core::InjectSite;

    fn quick_spec() -> JobSpec {
        let mut spec = JobSpec::new("GUPS", "Trident");
        spec.scale = 256;
        spec.samples = 2_000;
        spec
    }

    #[test]
    fn resolve_rejects_what_cannot_run() {
        let unknown_wl = JobSpec::new("NoSuchWorkload", "Trident");
        assert!(resolve(&unknown_wl).unwrap_err().contains("workload"));
        let unknown_pol = JobSpec::new("GUPS", "NoSuchPolicy");
        assert!(resolve(&unknown_pol).unwrap_err().contains("policy"));

        let mut zero_scale = quick_spec();
        zero_scale.scale = 0;
        assert!(resolve(&zero_scale).is_err());

        let mut bad_plan = quick_spec();
        bad_plan.fault = Some(FaultSpec {
            seed: 1,
            rules: vec![(InjectSite::Alloc, 5_000)],
        });
        assert!(resolve(&bad_plan).unwrap_err().contains("fault plan"));

        let mut both = quick_spec();
        both.trace_out = Some("x.jsonl".to_owned());
        both.trace_capacity = Some(16);
        assert!(resolve(&both).is_err());
    }

    #[test]
    fn resolve_derives_the_cell_seed() {
        let mut spec = quick_spec();
        spec.seed = 42;
        spec.cell_index = Some(3);
        let (config, _, _) = resolve(&spec).unwrap();
        assert_eq!(config.seed, derive_cell_seed(42, 3));
        spec.cell_index = None;
        let (config, _, _) = resolve(&spec).unwrap();
        assert_eq!(config.seed, 42);
    }

    #[test]
    fn execute_matches_a_direct_system_run() {
        let spec = quick_spec();
        let result = execute(&spec).unwrap();

        let opts = ExpOptions {
            scale: 256,
            samples: 2_000,
            seed: 42,
            threads: 0,
            trace_capacity: None,
            profile: false,
        };
        let mut system = System::builder(opts.config())
            .policy(PolicyKind::Trident)
            .workload(WorkloadSpec::by_name("GUPS").unwrap())
            .build()
            .unwrap();
        system.settle();
        let m = system.measure();
        assert_eq!(result.snapshot, m.snapshot);
        assert_eq!(result.walk_cycles, m.walk_cycles);
        let geo = system.geometry();
        assert_eq!(result.rungs, rung_rows(&geo, &m.mapped_bytes));
    }

    #[test]
    fn resolve_applies_and_validates_geometry() {
        let mut spec = quick_spec();
        spec.geometry = Some("sv48".to_owned());
        let (config, _, _) = resolve(&spec).unwrap();
        assert_eq!(config.geo.name(), "sv48");
        // Scale 1/256 squeezes the 64KB NAPOT rung out of the ladder.
        assert_eq!(config.geo.rung_count(), 3);
        spec.scale = 4;
        let (config, _, _) = resolve(&spec).unwrap();
        assert_eq!(config.geo.rung_count(), 4);

        spec.geometry = Some("pdp11".to_owned());
        assert!(resolve(&spec).unwrap_err().contains("unknown geometry"));

        // A prefer label resolves against the job's scaled ladder: 32MB
        // is an aarch64 size class, not an sv48 one, and the 64KB rung
        // only exists at scales that keep it.
        let mut pref = quick_spec();
        pref.scale = 4;
        pref.geometry = Some("sv48".to_owned());
        pref.tenants.push(crate::proto::TenantJob {
            workload: "GUPS".to_owned(),
            weight: 1,
            pins: vec![],
            prefer: Some("32MB".to_owned()),
            opt_out: false,
            chunk_budget: None,
        });
        assert!(resolve(&pref).unwrap_err().contains("no rung"));
        pref.tenants[0].prefer = Some("64KB".to_owned());
        assert!(resolve(&pref).is_ok());
        pref.scale = 256;
        assert!(resolve(&pref).unwrap_err().contains("no rung"));
    }
}
