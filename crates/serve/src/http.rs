//! A minimal HTTP/1.1 scrape endpoint for the daemon's metrics.
//!
//! Hand-rolled on `std::net` — no dependencies — because it only has to
//! answer two fixed routes for a scraper on a trusted network:
//!
//! - `GET /metrics` — the full [`DaemonMetrics::render`] Prometheus
//!   text body.
//! - `GET /healthz` — `200 ok` while serving, `503 draining` with a
//!   `Retry-After` hint once shutdown began (so orchestrators stop
//!   routing to a dying daemon and know when to look again).
//!
//! Connections are handled one at a time with short socket timeouts:
//! a scrape is a sub-millisecond render of an in-memory registry, and a
//! stalled peer is cut off rather than allowed to wedge the listener.
//! The listener holds only the metrics registry (never the service), so
//! scrapes cannot contend with job execution or admission.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::DaemonMetrics;

/// How long one request may take to arrive or one response to drain.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The `Retry-After` hint (seconds) a draining `/healthz` sends: long
/// enough for a typical drain, short enough that a fleet client
/// re-probes a restarted daemon promptly.
pub const RETRY_AFTER_SECS: u64 = 2;

/// A listening metrics endpoint; stop it with
/// [`stop`](MetricsHandle::stop) then [`join`](MetricsHandle::join).
pub struct MetricsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<std::io::Result<()>>,
}

impl MetricsHandle {
    /// The address actually bound (resolves port 0 to the chosen port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the accept loop to exit after its current accept.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // accept() has no timeout; a throwaway connection wakes it so it
        // observes the flag.
        drop(TcpStream::connect(self.addr));
    }

    /// Waits for the accept loop to exit.
    ///
    /// # Errors
    ///
    /// Propagates a listener I/O error from the accept loop.
    pub fn join(self) -> std::io::Result<()> {
        self.accept_thread
            .join()
            .unwrap_or_else(|_| Err(std::io::Error::other("metrics accept loop panicked")))
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9100`, or port 0 for an ephemeral
/// port) and serves `/metrics` and `/healthz` from `metrics` until
/// stopped.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_metrics(metrics: Arc<DaemonMetrics>, addr: &str) -> std::io::Result<MetricsHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || -> std::io::Result<()> {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // One scrape at a time: render-and-write of an in-memory
            // body, bounded by the socket timeouts.
            let _ = handle_connection(stream, &metrics);
        }
        Ok(())
    });
    Ok(MetricsHandle {
        addr,
        stop,
        accept_thread,
    })
}

fn handle_connection(stream: TcpStream, metrics: &DaemonMetrics) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header block; its content is irrelevant to both routes.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, extra_header, body) = route(method, path, metrics);
    respond(stream, status, content_type, extra_header, &body)
}

fn route(
    method: &str,
    path: &str,
    metrics: &DaemonMetrics,
) -> (&'static str, &'static str, Option<String>, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            None,
            "method not allowed\n".to_owned(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            None,
            metrics.render(),
        ),
        "/healthz" => {
            if metrics.healthy() {
                (
                    "200 OK",
                    "text/plain; charset=utf-8",
                    None,
                    "ok\n".to_owned(),
                )
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    Some(format!("Retry-After: {RETRY_AFTER_SECS}")),
                    "draining\n".to_owned(),
                )
            }
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            None,
            "not found\n".to_owned(),
        ),
    }
}

fn respond(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    extra_header: Option<String>,
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(header) = extra_header {
        head.push_str(&header);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, target: &str) -> (String, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status = head.lines().next().unwrap_or("").to_owned();
        (status, head.to_owned(), body.to_owned())
    }

    #[test]
    fn routes_answer_and_drain_flips_healthz() {
        let metrics = Arc::new(DaemonMetrics::new(2, 8));
        let handle = serve_metrics(Arc::clone(&metrics), "127.0.0.1:0").unwrap();
        let addr = handle.addr();

        let (status, head, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
        assert!(!head.contains("Retry-After"), "{head}");

        let (status, _, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("tridentd_workers 2\n"), "{body}");
        trident_prof::prom::lint(&body).unwrap();

        let (status, _, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        metrics.set_draining(true);
        let (status, head, body) = get(addr, "/healthz");
        assert!(status.contains("503"), "{status}");
        assert_eq!(body, "draining\n");
        assert!(
            head.contains(&format!("Retry-After: {RETRY_AFTER_SECS}")),
            "a draining daemon must hint when to re-probe: {head}"
        );

        handle.stop();
        handle.join().unwrap();
    }

    #[test]
    fn non_get_methods_are_refused() {
        let metrics = Arc::new(DaemonMetrics::new(1, 4));
        let handle = serve_metrics(metrics, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        handle.stop();
        handle.join().unwrap();
    }
}
