//! The daemon's live metrics registry.
//!
//! One [`DaemonMetrics`] per [`Service`](crate::Service) accumulates
//! everything an operator needs to see a running fleet: jobs by state,
//! per-shard queue occupancy and high-water marks, submission outcomes,
//! job wall-time and queue-wait latency histograms, trace-ring drop
//! totals, per-tenant walk/fault/FMFI attribution folded from each
//! finished result, and a per-job in-flight progress table fed by the
//! simulator's per-tick hook.
//!
//! The registry is lock-light: hot-path counters are atomics; only the
//! fold of a *finished* result (histograms, per-tenant totals, snapshot
//! absorb) and the heartbeat table take a mutex, and neither is on a
//! simulation-visible path. Updates never touch the seeded RNG or
//! modeled time, so a metered daemon measures bit-identically to an
//! unmetered one.
//!
//! [`render`](DaemonMetrics::render) produces the Prometheus text body
//! through the same `trident_prof::prom` encoder the offline
//! `trace_analyze` report uses — identical counters render
//! byte-identical metric lines on either path.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use trident_core::StatsSnapshot;
use trident_prof::prom::{self, TextEncoder};
use trident_prof::LatencyHistogram;
use trident_sim::RunProgress;

use crate::proto::JobResult;
use crate::service::SubmitError;

/// Per-shard queue gauges.
#[derive(Debug, Default)]
struct ShardGauges {
    depth: AtomicU64,
    high_water: AtomicU64,
}

/// Totals attributed to one workload name across finished jobs.
#[derive(Debug, Default, Clone, Copy)]
struct TenantTotals {
    samples: u64,
    walks: u64,
    walk_cycles: u64,
    faults: u64,
    /// Last observed 1GB FMFI in thousandths (a gauge, not a counter).
    fmfi_milli: u64,
}

/// State folded under one mutex, off every hot path: only touched when
/// a job settles.
#[derive(Debug)]
struct Folded {
    snapshot: StatsSnapshot,
    tenants: BTreeMap<String, TenantTotals>,
    wall_ns: LatencyHistogram,
    wait_ns: LatencyHistogram,
}

/// The live metrics registry of one daemon. See the module docs.
#[derive(Debug)]
pub struct DaemonMetrics {
    workers: u64,
    queue_depth_limit: u64,
    accepted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_invalid: AtomicU64,
    rejected_shutting_down: AtomicU64,
    queued: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    trace_dropped: AtomicU64,
    heartbeats: AtomicU64,
    journal_records: AtomicU64,
    journal_replayed: AtomicU64,
    journal_pending: AtomicU64,
    journal_errors: AtomicU64,
    paused: AtomicBool,
    draining: AtomicBool,
    shards: Vec<ShardGauges>,
    folded: Mutex<Folded>,
    progress: Mutex<HashMap<u64, RunProgress>>,
}

fn dec(counter: &AtomicU64) {
    // Transition accounting guarantees non-negativity; saturate anyway so
    // a bookkeeping bug degrades a gauge instead of wrapping it to 2^64.
    let _ = counter.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
        Some(v.saturating_sub(1))
    });
}

impl DaemonMetrics {
    /// A zeroed registry for a pool of `workers` shards, each admitting
    /// at most `queue_depth` queued jobs.
    #[must_use]
    pub fn new(workers: usize, queue_depth: usize) -> DaemonMetrics {
        DaemonMetrics {
            workers: workers as u64,
            queue_depth_limit: queue_depth as u64,
            accepted: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            rejected_shutting_down: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            running: AtomicU64::new(0),
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            trace_dropped: AtomicU64::new(0),
            heartbeats: AtomicU64::new(0),
            journal_records: AtomicU64::new(0),
            journal_replayed: AtomicU64::new(0),
            journal_pending: AtomicU64::new(0),
            journal_errors: AtomicU64::new(0),
            paused: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            shards: (0..workers).map(|_| ShardGauges::default()).collect(),
            folded: Mutex::new(Folded {
                snapshot: StatsSnapshot::default(),
                tenants: BTreeMap::new(),
                wall_ns: LatencyHistogram::new(),
                wait_ns: LatencyHistogram::new(),
            }),
            progress: Mutex::new(HashMap::new()),
        }
    }

    /// Records a refused submission, by refusal kind.
    pub fn on_rejected(&self, err: &SubmitError) {
        let counter = match err {
            SubmitError::QueueFull { .. } => &self.rejected_queue_full,
            SubmitError::Invalid(_) => &self.rejected_invalid,
            SubmitError::ShuttingDown => &self.rejected_shutting_down,
        };
        counter.fetch_add(1, Ordering::SeqCst);
    }

    /// Records an admitted job landing on `shard` with `depth_after`
    /// jobs now queued there.
    pub fn on_accepted(&self, shard: usize, depth_after: usize) {
        self.accepted.fetch_add(1, Ordering::SeqCst);
        self.queued.fetch_add(1, Ordering::SeqCst);
        if let Some(g) = self.shards.get(shard) {
            let depth = depth_after as u64;
            g.depth.store(depth, Ordering::SeqCst);
            g.high_water.fetch_max(depth, Ordering::SeqCst);
        }
    }

    /// Records a worker popping `shard`'s queue down to `depth_after`.
    pub fn on_dequeue(&self, shard: usize, depth_after: usize) {
        if let Some(g) = self.shards.get(shard) {
            g.depth.store(depth_after as u64, Ordering::SeqCst);
        }
    }

    /// Records job `id` leaving the queue for a worker after waiting
    /// `wait_ns`, about to run `samples_total` measured accesses.
    pub fn on_start(&self, id: u64, wait_ns: u64, samples_total: u64) {
        dec(&self.queued);
        self.running.fetch_add(1, Ordering::SeqCst);
        self.folded
            .lock()
            .expect("metrics fold poisoned")
            .wait_ns
            .record(wait_ns);
        self.progress
            .lock()
            .expect("progress table poisoned")
            .insert(
                id,
                RunProgress {
                    ticks: 0,
                    samples_done: 0,
                    samples_total,
                    fmfi_milli: 0,
                },
            );
    }

    /// Records one per-tick progress report from job `id`'s simulation.
    pub fn heartbeat(&self, id: u64, progress: RunProgress) {
        self.heartbeats.fetch_add(1, Ordering::SeqCst);
        self.progress
            .lock()
            .expect("progress table poisoned")
            .insert(id, progress);
    }

    /// Folds a successfully finished job into the registry: wall-time
    /// histogram, trace-ring drops, the pooled counter snapshot, and
    /// per-tenant attribution; pins the job's final progress.
    pub fn on_done(&self, id: u64, wall_ns: u64, result: &JobResult) {
        dec(&self.running);
        self.done.fetch_add(1, Ordering::SeqCst);
        self.trace_dropped
            .fetch_add(result.trace_dropped, Ordering::SeqCst);
        {
            let mut folded = self.folded.lock().expect("metrics fold poisoned");
            folded.wall_ns.record(wall_ns);
            folded.snapshot.absorb(&result.snapshot);
            for row in &result.tenants {
                let totals = folded.tenants.entry(row.workload.clone()).or_default();
                totals.samples += row.samples;
                totals.walks += row.walks;
                totals.walk_cycles += row.walk_cycles;
                totals.faults += row.faults;
                totals.fmfi_milli = row.fmfi_milli;
            }
        }
        let mut progress = self.progress.lock().expect("progress table poisoned");
        let entry = progress.entry(id).or_insert(RunProgress {
            ticks: 0,
            samples_done: 0,
            samples_total: result.samples,
            fmfi_milli: 0,
        });
        entry.samples_done = result.samples;
        entry.samples_total = result.samples;
    }

    /// Records a job that ran and failed after `wall_ns`.
    pub fn on_failed(&self, _id: u64, wall_ns: u64) {
        dec(&self.running);
        self.failed.fetch_add(1, Ordering::SeqCst);
        self.folded
            .lock()
            .expect("metrics fold poisoned")
            .wall_ns
            .record(wall_ns);
    }

    /// Records a queued job being cancelled before it ran.
    pub fn on_cancelled(&self) {
        dec(&self.queued);
        self.cancelled.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a journaled acceptance: one more record on disk, one
    /// more job a crash right now would replay.
    pub fn on_journal_accept(&self) {
        self.journal_records.fetch_add(1, Ordering::SeqCst);
        self.journal_pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a journaled terminal mark: one more record on disk, one
    /// fewer job a crash would replay.
    pub fn on_journal_terminal(&self) {
        self.journal_records.fetch_add(1, Ordering::SeqCst);
        dec(&self.journal_pending);
    }

    /// Records the replay count of a journal opened at startup.
    pub fn on_journal_replayed(&self, jobs: u64) {
        self.journal_replayed.fetch_add(jobs, Ordering::SeqCst);
    }

    /// Records a failed journal append — the job still runs, but its
    /// durability is gone; operators alert on this.
    pub fn on_journal_error(&self) {
        self.journal_errors.fetch_add(1, Ordering::SeqCst);
    }

    /// Mirrors the service's paused flag.
    pub fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
    }

    /// Whether the service is currently paused.
    #[must_use]
    pub fn paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    /// Mirrors the service entering draining mode; `/healthz` turns 503.
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining, Ordering::SeqCst);
    }

    /// `false` once the service started draining for shutdown.
    #[must_use]
    pub fn healthy(&self) -> bool {
        !self.draining.load(Ordering::SeqCst)
    }

    /// The latest progress report for job `id`: zeros before its first
    /// tick, the final sample counts after it finished, `None` for a job
    /// this registry never saw start.
    #[must_use]
    pub fn progress(&self, id: u64) -> Option<RunProgress> {
        self.progress
            .lock()
            .expect("progress table poisoned")
            .get(&id)
            .copied()
    }

    /// Current queued occupancy per shard.
    #[must_use]
    pub fn queue_depths(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|g| g.depth.load(Ordering::SeqCst))
            .collect()
    }

    /// Renders the whole registry as a Prometheus text body: the
    /// `tridentd_*` service families followed by the pooled `trident_*`
    /// snapshot block (shared byte-for-byte with the offline report via
    /// `trident_prof::prom`).
    #[must_use]
    pub fn render(&self) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::SeqCst);
        let mut enc = TextEncoder::new();
        enc.gauge("tridentd_workers", "Worker threads (= shards).");
        enc.sample("tridentd_workers", &[], self.workers);
        enc.gauge(
            "tridentd_queue_depth_limit",
            "Maximum queued jobs per shard.",
        );
        enc.sample("tridentd_queue_depth_limit", &[], self.queue_depth_limit);
        enc.gauge("tridentd_paused", "1 while workers are paused.");
        enc.sample("tridentd_paused", &[], u64::from(self.paused()));
        enc.gauge("tridentd_draining", "1 once shutdown draining began.");
        enc.sample("tridentd_draining", &[], u64::from(!self.healthy()));
        enc.gauge("tridentd_jobs", "Live jobs, by state.");
        enc.sample("tridentd_jobs", &[("state", "queued")], load(&self.queued));
        enc.sample(
            "tridentd_jobs",
            &[("state", "running")],
            load(&self.running),
        );
        enc.counter("tridentd_jobs_total", "Settled jobs, by terminal state.");
        enc.sample(
            "tridentd_jobs_total",
            &[("state", "done")],
            load(&self.done),
        );
        enc.sample(
            "tridentd_jobs_total",
            &[("state", "failed")],
            load(&self.failed),
        );
        enc.sample(
            "tridentd_jobs_total",
            &[("state", "cancelled")],
            load(&self.cancelled),
        );
        enc.counter("tridentd_submissions_total", "Submissions, by outcome.");
        enc.sample(
            "tridentd_submissions_total",
            &[("outcome", "accepted")],
            load(&self.accepted),
        );
        enc.sample(
            "tridentd_submissions_total",
            &[("outcome", "queue_full")],
            load(&self.rejected_queue_full),
        );
        enc.sample(
            "tridentd_submissions_total",
            &[("outcome", "invalid")],
            load(&self.rejected_invalid),
        );
        enc.sample(
            "tridentd_submissions_total",
            &[("outcome", "shutting_down")],
            load(&self.rejected_shutting_down),
        );
        enc.gauge("tridentd_shard_queue_depth", "Queued jobs on each shard.");
        let shard_labels: Vec<String> = (0..self.shards.len()).map(|i| i.to_string()).collect();
        for (label, g) in shard_labels.iter().zip(&self.shards) {
            enc.sample(
                "tridentd_shard_queue_depth",
                &[("shard", label)],
                g.depth.load(Ordering::SeqCst),
            );
        }
        enc.gauge(
            "tridentd_shard_queue_high_water",
            "Deepest each shard's queue has been.",
        );
        for (label, g) in shard_labels.iter().zip(&self.shards) {
            enc.sample(
                "tridentd_shard_queue_high_water",
                &[("shard", label)],
                g.high_water.load(Ordering::SeqCst),
            );
        }
        enc.counter(
            "tridentd_heartbeats_total",
            "Per-tick progress reports received from running jobs.",
        );
        enc.sample("tridentd_heartbeats_total", &[], load(&self.heartbeats));
        enc.counter(
            "tridentd_trace_dropped_total",
            "Events dropped by job trace rings.",
        );
        enc.sample(
            "tridentd_trace_dropped_total",
            &[],
            load(&self.trace_dropped),
        );
        enc.counter(
            "tridentd_journal_records_total",
            "Records appended to the durable job journal.",
        );
        enc.sample(
            "tridentd_journal_records_total",
            &[],
            load(&self.journal_records),
        );
        enc.counter(
            "tridentd_journal_replayed_total",
            "Jobs re-admitted from the journal at startup.",
        );
        enc.sample(
            "tridentd_journal_replayed_total",
            &[],
            load(&self.journal_replayed),
        );
        enc.gauge(
            "tridentd_journal_pending",
            "Journaled jobs a crash right now would replay.",
        );
        enc.sample("tridentd_journal_pending", &[], load(&self.journal_pending));
        enc.counter(
            "tridentd_journal_errors_total",
            "Journal appends that failed (durability degraded).",
        );
        enc.sample(
            "tridentd_journal_errors_total",
            &[],
            load(&self.journal_errors),
        );
        let folded = self.folded.lock().expect("metrics fold poisoned");
        enc.summary(
            "tridentd_job_wall_ns",
            "Job wall-clock duration quantiles in nanoseconds.",
        );
        prom::summary_samples(&mut enc, "tridentd_job_wall_ns", &[], &folded.wall_ns);
        enc.summary(
            "tridentd_job_queue_wait_ns",
            "Job queue-wait quantiles in nanoseconds.",
        );
        prom::summary_samples(&mut enc, "tridentd_job_queue_wait_ns", &[], &folded.wait_ns);
        if !folded.tenants.is_empty() {
            enc.counter(
                "tridentd_tenant_samples_total",
                "Measured accesses, by tenant workload.",
            );
            for (name, t) in &folded.tenants {
                enc.sample(
                    "tridentd_tenant_samples_total",
                    &[("workload", name)],
                    t.samples,
                );
            }
            enc.counter(
                "tridentd_tenant_walks_total",
                "Page walks, by tenant workload.",
            );
            for (name, t) in &folded.tenants {
                enc.sample(
                    "tridentd_tenant_walks_total",
                    &[("workload", name)],
                    t.walks,
                );
            }
            enc.counter(
                "tridentd_tenant_walk_cycles_total",
                "Translation cycles, by tenant workload.",
            );
            for (name, t) in &folded.tenants {
                enc.sample(
                    "tridentd_tenant_walk_cycles_total",
                    &[("workload", name)],
                    t.walk_cycles,
                );
            }
            enc.counter(
                "tridentd_tenant_faults_total",
                "Page faults, by tenant workload.",
            );
            for (name, t) in &folded.tenants {
                enc.sample(
                    "tridentd_tenant_faults_total",
                    &[("workload", name)],
                    t.faults,
                );
            }
            enc.gauge(
                "tridentd_tenant_fmfi_milli",
                "Last observed 1GB FMFI in thousandths, by tenant workload.",
            );
            for (name, t) in &folded.tenants {
                enc.sample(
                    "tridentd_tenant_fmfi_milli",
                    &[("workload", name)],
                    t.fmfi_milli,
                );
            }
        }
        prom::snapshot_counters(&mut enc, &folded.snapshot);
        enc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{JobResult, RungRow, TenantRow};

    fn result_with_tenant() -> JobResult {
        JobResult {
            samples: 100,
            tlb_accesses: 100,
            walks: 10,
            walk_cycles: 350,
            rungs: vec![
                RungRow {
                    size: "4KB".to_owned(),
                    bytes: 1,
                },
                RungRow {
                    size: "2MB".to_owned(),
                    bytes: 2,
                },
                RungRow {
                    size: "1GB".to_owned(),
                    bytes: 3,
                },
            ],
            trace_dropped: 4,
            trace_lines: None,
            violations: 0,
            tenants: vec![TenantRow {
                tenant: 0,
                workload: "GUPS".to_owned(),
                samples: 100,
                walks: 10,
                walk_cycles: 350,
                rungs: vec![
                    RungRow {
                        size: "4KB".to_owned(),
                        bytes: 1,
                    },
                    RungRow {
                        size: "2MB".to_owned(),
                        bytes: 2,
                    },
                    RungRow {
                        size: "1GB".to_owned(),
                        bytes: 3,
                    },
                ],
                fmfi_milli: 250,
                faults: 7,
            }],
            snapshot: StatsSnapshot {
                faults: [7, 0, 0, 0, 0, 0],
                ..StatsSnapshot::default()
            },
        }
    }

    #[test]
    fn lifecycle_counters_track_transitions() {
        let m = DaemonMetrics::new(2, 8);
        m.on_accepted(1, 1);
        m.on_accepted(1, 2);
        assert_eq!(m.queue_depths(), vec![0, 2]);
        m.on_dequeue(1, 1);
        m.on_start(1, 5_000, 100);
        m.heartbeat(
            1,
            RunProgress {
                ticks: 3,
                samples_done: 50,
                samples_total: 100,
                fmfi_milli: 900,
            },
        );
        assert_eq!(m.progress(1).unwrap().samples_done, 50);
        m.on_done(1, 1_000_000, &result_with_tenant());
        assert_eq!(m.progress(1).unwrap().samples_done, 100);
        m.on_cancelled();

        let text = m.render();
        assert!(
            text.contains("tridentd_jobs_total{state=\"done\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("tridentd_jobs_total{state=\"cancelled\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("tridentd_submissions_total{outcome=\"accepted\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("tridentd_shard_queue_high_water{shard=\"1\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("tridentd_trace_dropped_total 4\n"), "{text}");
        assert!(
            text.contains("tridentd_tenant_samples_total{workload=\"GUPS\"} 100\n"),
            "{text}"
        );
        assert!(
            text.contains("trident_faults_total{size=\"base\"} 7\n"),
            "{text}"
        );
        assert!(text.contains("tridentd_job_wall_ns_count 1\n"), "{text}");
        prom::lint(&text).unwrap();
    }

    #[test]
    fn rendering_is_always_lint_clean() {
        // Empty registry (no tenants, empty histograms) must lint too.
        let m = DaemonMetrics::new(1, 4);
        prom::lint(&m.render()).unwrap();
        m.set_paused(true);
        m.set_draining(true);
        assert!(!m.healthy());
        let text = m.render();
        assert!(text.contains("tridentd_paused 1\n"));
        assert!(text.contains("tridentd_draining 1\n"));
        prom::lint(&text).unwrap();
    }

    #[test]
    fn journal_counters_render_and_pending_is_a_gauge() {
        let m = DaemonMetrics::new(1, 4);
        m.on_journal_replayed(2);
        m.on_journal_accept();
        m.on_journal_accept();
        m.on_journal_terminal();
        m.on_journal_error();
        let text = m.render();
        assert!(
            text.contains("tridentd_journal_records_total 3\n"),
            "{text}"
        );
        assert!(
            text.contains("tridentd_journal_replayed_total 2\n"),
            "{text}"
        );
        assert!(text.contains("tridentd_journal_pending 1\n"), "{text}");
        assert!(text.contains("tridentd_journal_errors_total 1\n"), "{text}");
        prom::lint(&text).unwrap();
    }

    #[test]
    fn gauge_decrements_saturate() {
        let m = DaemonMetrics::new(1, 4);
        m.on_cancelled();
        let text = m.render();
        assert!(
            text.contains("tridentd_jobs{state=\"queued\"} 0\n"),
            "queued gauge must saturate at zero, got: {text}"
        );
    }
}
