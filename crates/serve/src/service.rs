//! The job service: a sharded worker pool with bounded admission.
//!
//! Jobs are assigned to shards by `id % workers`; each shard owns a
//! bounded FIFO queue and one worker thread, so job execution order
//! within a shard is submission order and the mapping from job to
//! worker is a pure function of the id — nothing about scheduling can
//! affect results (each job is a self-contained deterministic
//! simulation anyway; see `job::execute`).
//!
//! Admission is bounded per shard: when a job's target queue is at
//! `queue_depth`, submission fails synchronously with
//! [`SubmitError::QueueFull`] — the daemon never buffers unboundedly
//! and never blocks the submitting connection. Shutdown drains: queued
//! and in-flight jobs finish, new submissions are refused.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use trident_sim::RunProgress;

use crate::job;
use crate::journal::Journal;
use crate::metrics::DaemonMetrics;
use crate::proto::{
    ErrorCode, JobOrigin, JobProgress, JobResult, JobSpec, JobState, JobSummary, JournalInfo,
    Request, Response, ServiceInfo,
};

/// Sizing knobs for a [`Service`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads (= shards). `0` means one per available core.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs per shard; submissions
    /// beyond this fail with [`SubmitError::QueueFull`].
    pub queue_depth: usize,
    /// Start with workers paused: jobs are admitted and queued but none
    /// execute until [`Service::resume`]. Used by tests to fill queues
    /// deterministically, and by operators to stage a batch.
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_depth: 64,
            start_paused: false,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The target shard's queue is at capacity.
    QueueFull {
        /// The shard that was full.
        shard: usize,
        /// Its configured depth.
        depth: usize,
    },
    /// The spec failed validation (unknown workload/policy, bad fault
    /// plan, conflicting outputs).
    Invalid(String),
    /// The service is draining for shutdown.
    ShuttingDown,
}

impl SubmitError {
    /// The wire error code for this failure.
    #[must_use]
    pub fn code(&self) -> ErrorCode {
        match self {
            SubmitError::QueueFull { .. } => ErrorCode::QueueFull,
            SubmitError::Invalid(_) => ErrorCode::BadRequest,
            SubmitError::ShuttingDown => ErrorCode::ShuttingDown,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { shard, depth } => {
                write!(f, "shard {shard} queue is at its depth of {depth}")
            }
            SubmitError::Invalid(msg) => f.write_str(msg),
            SubmitError::ShuttingDown => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How waiting for a result ended.
// Size skew from the embedded snapshot; one value per wait, immediately
// consumed — same call as `proto::Response`.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum JobWait {
    /// The job finished; here is its measurement.
    Done(JobResult),
    /// The job ran and failed with this error text.
    Failed(String),
    /// The job was cancelled before running.
    Cancelled,
}

struct JobEntry {
    spec: JobSpec,
    state: JobState,
    origin: JobOrigin,
    result: Option<JobResult>,
    error: Option<String>,
    /// Wall-clock admission time, for the queue-wait histogram. Never
    /// feeds the simulation — daemon latency only.
    queued_at: Instant,
}

struct JobTable {
    next_id: u64,
    jobs: HashMap<u64, JobEntry>,
}

struct Shard {
    queue: Mutex<VecDeque<u64>>,
    wake: Condvar,
}

struct Inner {
    table: Mutex<JobTable>,
    /// Signalled whenever any job reaches a terminal state.
    settled: Condvar,
    shards: Vec<Shard>,
    queue_depth: usize,
    stopping: AtomicBool,
    paused: AtomicBool,
    metrics: Arc<DaemonMetrics>,
    /// Durable job journal, when the daemon was started with one.
    /// Lock order: table before journal (journal appends happen under
    /// the table lock so records land in table-transition order).
    journal: Option<Mutex<Journal>>,
    /// Jobs replayed from the journal at startup.
    replayed: u64,
}

impl Inner {
    /// Appends a terminal mark for `id`; journal failures degrade
    /// durability loudly (metric + stderr), never job execution.
    fn journal_terminal(&self, id: u64, op: &'static str) {
        if let Some(journal) = &self.journal {
            let result = journal.lock().expect("journal poisoned").terminal(id, op);
            if let Err(err) = result {
                self.metrics.on_journal_error();
                eprintln!("# journal: failed to record {op} for job {id}: {err}");
            } else {
                self.metrics.on_journal_terminal();
            }
        }
    }
}

/// A running job service. Dropping without [`shutdown`](Service::shutdown)
/// detaches the workers; call `shutdown` for a drained, joined exit.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// What opening a journal at service start found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Well-formed records the existing journal held.
    pub records: u64,
    /// Orphaned (accepted-but-unfinished) jobs re-admitted for
    /// execution.
    pub replayed: u64,
    /// Torn or corrupt lines skipped during replay.
    pub corrupt: u64,
}

impl Service {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Service {
        let (service, _) = Service::start_inner(config, None);
        service
    }

    /// Starts the worker pool with a crash-durable job journal at
    /// `path`. Jobs the journal shows as accepted but not terminal —
    /// orphans of a crash — are re-admitted under fresh ids (origin
    /// [`JobOrigin::Journal`]) before the first worker runs, bypassing
    /// the admission bound so a deep pre-crash backlog is never dropped.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors opening or replaying the journal.
    pub fn start_with_journal(
        config: ServiceConfig,
        path: &Path,
    ) -> std::io::Result<(Service, ReplayReport)> {
        let (journal, replay) = Journal::open(path)?;
        let (service, report) = Service::start_inner(config, Some((journal, replay)));
        Ok((service, report))
    }

    fn start_inner(
        config: ServiceConfig,
        journal: Option<(Journal, crate::journal::JournalReplay)>,
    ) -> (Service, ReplayReport) {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };
        let (journal, replay) = match journal {
            Some((journal, replay)) => (Some(journal), Some(replay)),
            None => (None, None),
        };
        let replayed = replay.as_ref().map_or(0, |r| r.pending.len() as u64);
        let mut inner = Inner {
            table: Mutex::new(JobTable {
                // Never reuse a pre-crash id: resume above the highest
                // id the journal ever named.
                next_id: replay.as_ref().map_or(0, |r| r.max_id) + 1,
                jobs: HashMap::new(),
            }),
            settled: Condvar::new(),
            shards: (0..workers)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    wake: Condvar::new(),
                })
                .collect(),
            queue_depth: config.queue_depth.max(1),
            stopping: AtomicBool::new(false),
            paused: AtomicBool::new(config.start_paused),
            metrics: {
                let metrics = Arc::new(DaemonMetrics::new(workers, config.queue_depth.max(1)));
                metrics.set_paused(config.start_paused);
                metrics
            },
            journal: journal.map(Mutex::new),
            replayed,
        };
        let report = ReplayReport {
            records: replay.as_ref().map_or(0, |r| r.records),
            replayed,
            corrupt: replay.as_ref().map_or(0, |r| r.corrupt),
        };
        // Re-admit orphans before any worker exists: no contention, and
        // the first tick a worker takes is already in replay order.
        if let Some(replay) = replay {
            inner.metrics.on_journal_replayed(replayed);
            for (old_id, spec) in replay.pending {
                admit_replayed(&mut inner, old_id, spec);
            }
        }
        let inner = Arc::new(inner);
        let handles = (0..workers)
            .map(|shard| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, shard))
            })
            .collect();
        (
            Service {
                inner,
                workers: handles,
            },
            report,
        )
    }

    /// The number of worker threads (= shards).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.shards.len()
    }

    /// Validates and admits a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] on a spec that could never run,
    /// [`SubmitError::QueueFull`] when the target shard is at capacity,
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let result = self.submit_inner(spec);
        if let Err(err) = &result {
            self.inner.metrics.on_rejected(err);
        }
        result
    }

    fn submit_inner(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        if self.inner.stopping.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        job::resolve(&spec).map_err(SubmitError::Invalid)?;
        // Lock order everywhere: table before shard queue.
        let mut table = self.inner.table.lock().expect("job table poisoned");
        let id = table.next_id;
        let shard_idx = usize::try_from(id % self.inner.shards.len() as u64).expect("fits");
        let shard = &self.inner.shards[shard_idx];
        {
            let mut queue = shard.queue.lock().expect("shard queue poisoned");
            if queue.len() >= self.inner.queue_depth {
                return Err(SubmitError::QueueFull {
                    shard: shard_idx,
                    depth: self.inner.queue_depth,
                });
            }
            queue.push_back(id);
            self.inner.metrics.on_accepted(shard_idx, queue.len());
        }
        table.next_id += 1;
        // Journal the acceptance before the submitter hears about it
        // (still under the table lock, so records land in id order). A
        // journal write failure degrades durability, loudly, but never
        // refuses a job the queue already took.
        if let Some(journal) = &self.inner.journal {
            let appended = journal.lock().expect("journal poisoned").accept(
                id,
                &spec,
                JobOrigin::Client,
                None,
            );
            match appended {
                Ok(()) => self.inner.metrics.on_journal_accept(),
                Err(err) => {
                    self.inner.metrics.on_journal_error();
                    eprintln!("# journal: failed to record accept of job {id}: {err}");
                }
            }
        }
        table.jobs.insert(
            id,
            JobEntry {
                spec,
                state: JobState::Queued,
                origin: JobOrigin::Client,
                result: None,
                error: None,
                queued_at: Instant::now(),
            },
        );
        drop(table);
        shard.wake.notify_one();
        Ok(id)
    }

    /// The job's current state, if it exists. Never blocks on job
    /// execution.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<JobState> {
        let table = self.inner.table.lock().expect("job table poisoned");
        table.jobs.get(&id).map(|j| j.state)
    }

    /// Blocks until the job reaches a terminal state and returns how it
    /// ended, or `None` for an unknown id.
    #[must_use]
    pub fn wait(&self, id: u64) -> Option<JobWait> {
        let mut table = self.inner.table.lock().expect("job table poisoned");
        loop {
            let entry = table.jobs.get(&id)?;
            match entry.state {
                JobState::Done => {
                    return Some(JobWait::Done(
                        entry.result.clone().expect("done job has a result"),
                    ))
                }
                JobState::Failed => {
                    return Some(JobWait::Failed(
                        entry
                            .error
                            .clone()
                            .unwrap_or_else(|| "unknown error".to_owned()),
                    ))
                }
                JobState::Cancelled => return Some(JobWait::Cancelled),
                JobState::Queued | JobState::Running => {
                    table = self.inner.settled.wait(table).expect("job table poisoned");
                }
            }
        }
    }

    /// Cancels a queued job. Returns the job's state after the attempt:
    /// `Cancelled` if this call cancelled it, the unchanged state if it
    /// was already running or finished, `None` for an unknown id.
    #[must_use]
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut table = self.inner.table.lock().expect("job table poisoned");
        let entry = table.jobs.get_mut(&id)?;
        if entry.state == JobState::Queued {
            // The id stays in its shard queue; the worker skips
            // non-queued entries when it pops them.
            entry.state = JobState::Cancelled;
            self.inner.metrics.on_cancelled();
            self.inner.journal_terminal(id, "cancelled");
            self.inner.settled.notify_all();
        }
        Some(entry.state)
    }

    /// Every known job, in submission order.
    #[must_use]
    pub fn list(&self) -> Vec<JobSummary> {
        let table = self.inner.table.lock().expect("job table poisoned");
        let mut rows: Vec<JobSummary> = table
            .jobs
            .iter()
            .map(|(&id, j)| JobSummary {
                id,
                state: j.state,
                workload: j.spec.workload.clone(),
                policy: j.spec.policy.clone(),
                key: j.spec.key.clone(),
                origin: j.origin,
            })
            .collect();
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Stops executing queued jobs (already-running jobs finish). Queued
    /// jobs keep their place and run on [`resume`](Service::resume).
    pub fn pause(&self) {
        self.inner.paused.store(true, Ordering::SeqCst);
        self.inner.metrics.set_paused(true);
    }

    /// Resumes execution after [`pause`](Service::pause).
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        self.inner.metrics.set_paused(false);
        for shard in &self.inner.shards {
            shard.wake.notify_one();
        }
    }

    /// Refuses new submissions from now on; queued and running jobs
    /// still drain. Idempotent.
    pub fn request_stop(&self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        self.inner.metrics.set_draining(true);
        for shard in &self.inner.shards {
            shard.wake.notify_one();
        }
    }

    /// The live metrics registry; share it with a scrape endpoint via
    /// [`serve_metrics`](crate::serve_metrics).
    #[must_use]
    pub fn metrics(&self) -> Arc<DaemonMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// A point-in-time health snapshot of the pool: paused flag, sizing,
    /// and per-shard queue occupancy.
    #[must_use]
    pub fn info(&self) -> ServiceInfo {
        let journal = self.inner.journal.as_ref().map(|journal| {
            let pending = {
                let table = self.inner.table.lock().expect("job table poisoned");
                table
                    .jobs
                    .values()
                    .filter(|j| !j.state.is_terminal())
                    .count() as u64
            };
            JournalInfo {
                records: journal.lock().expect("journal poisoned").appended(),
                replayed: self.inner.replayed,
                pending,
            }
        });
        ServiceInfo {
            paused: self.inner.paused.load(Ordering::SeqCst),
            workers: self.inner.shards.len(),
            queue_depth: self.inner.queue_depth,
            queues: self
                .inner
                .shards
                .iter()
                .map(|s| s.queue.lock().expect("shard queue poisoned").len() as u64)
                .collect(),
            journal,
        }
    }

    /// Drains every queued and in-flight job, joins the workers, and
    /// consumes the service.
    pub fn shutdown(mut self) {
        self.request_stop();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Serves one protocol request. `Result` requests block until the
    /// job settles; everything else answers immediately. A `Shutdown`
    /// request answers [`Response::ShuttingDown`] and flips the service
    /// into draining mode — the caller owns actually joining the
    /// workers (via [`shutdown`](Service::shutdown)).
    #[must_use]
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Submit(spec) => match self.submit(spec) {
                Ok(id) => Response::Submitted { id },
                Err(err) => Response::Error {
                    code: err.code(),
                    message: err.to_string(),
                },
            },
            Request::Status { id } => match self.status(id) {
                Some(state) => Response::Status {
                    id,
                    state,
                    service: self.info(),
                },
                None => unknown_job(id),
            },
            Request::Result { id } => match self.wait(id) {
                Some(JobWait::Done(result)) => Response::Result { id, result },
                Some(JobWait::Failed(message)) => Response::Error {
                    code: ErrorCode::JobFailed,
                    message,
                },
                Some(JobWait::Cancelled) => Response::Cancelled { id },
                None => unknown_job(id),
            },
            Request::Cancel { id } => match self.cancel(id) {
                Some(JobState::Cancelled) => Response::Cancelled { id },
                Some(state) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("job {id} is {state}; only queued jobs can be cancelled"),
                },
                None => unknown_job(id),
            },
            Request::List => Response::Jobs {
                jobs: self.list(),
                service: self.info(),
            },
            Request::Metrics => Response::Metrics {
                text: self.inner.metrics.render(),
            },
            Request::Progress { id } => match self.status(id) {
                Some(state) => {
                    let progress = self.inner.metrics.progress(id).unwrap_or_else(|| {
                        // Not started yet (or already settled without
                        // running): zeros against the spec's total.
                        let table = self.inner.table.lock().expect("job table poisoned");
                        RunProgress {
                            ticks: 0,
                            samples_done: 0,
                            samples_total: table.jobs.get(&id).map_or(0, |j| j.spec.samples as u64),
                            fmfi_milli: 0,
                        }
                    });
                    Response::Progress {
                        id,
                        state,
                        progress: JobProgress {
                            ticks: progress.ticks,
                            samples_done: progress.samples_done,
                            samples_total: progress.samples_total,
                            fmfi_milli: progress.fmfi_milli,
                        },
                    }
                }
                None => unknown_job(id),
            },
            Request::Shutdown => {
                self.request_stop();
                Response::ShuttingDown
            }
        }
    }
}

fn unknown_job(id: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownJob,
        message: format!("no job with id {id}"),
    }
}

fn worker_loop(inner: &Inner, shard_idx: usize) {
    let shard = &inner.shards[shard_idx];
    loop {
        let id = {
            let mut queue = shard.queue.lock().expect("shard queue poisoned");
            loop {
                let stopping = inner.stopping.load(Ordering::SeqCst);
                // While paused (and not draining for shutdown), hold.
                if inner.paused.load(Ordering::SeqCst) && !stopping {
                    queue = shard.wake.wait(queue).expect("shard queue poisoned");
                    continue;
                }
                if let Some(id) = queue.pop_front() {
                    inner.metrics.on_dequeue(shard_idx, queue.len());
                    break id;
                }
                if stopping {
                    return;
                }
                queue = shard.wake.wait(queue).expect("shard queue poisoned");
            }
        };
        run_one(inner, id);
    }
}

/// Executes job `id` (or skips it if it was cancelled while queued),
/// recording the outcome and waking result waiters.
fn run_one(inner: &Inner, id: u64) {
    let (spec, wait_ns) = {
        let mut table = inner.table.lock().expect("job table poisoned");
        let Some(entry) = table.jobs.get_mut(&id) else {
            return;
        };
        if entry.state != JobState::Queued {
            return; // cancelled while queued
        }
        entry.state = JobState::Running;
        let wait_ns = u64::try_from(entry.queued_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (entry.spec.clone(), wait_ns)
    };
    inner.metrics.on_start(id, wait_ns, spec.samples as u64);
    let started = Instant::now();
    // Per-tick heartbeats make the in-flight job visible to `watch` and
    // `/metrics`; the hook only reads state the tick already computed,
    // so a metered run measures bit-identically to an unmetered one.
    let heartbeat_metrics = Arc::clone(&inner.metrics);
    let hook: Box<dyn FnMut(RunProgress) + Send> =
        Box::new(move |p| heartbeat_metrics.heartbeat(id, p));
    // A panicking simulation must not take its worker (or the whole
    // daemon) down — it becomes a Failed job like any other error.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        job::execute_with_progress(&spec, Some(hook))
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        Err(format!("job panicked: {msg}"))
    });
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    match &outcome {
        Ok(result) => inner.metrics.on_done(id, wall_ns, result),
        Err(_) => inner.metrics.on_failed(id, wall_ns),
    }
    let op = if outcome.is_ok() { "done" } else { "failed" };
    let mut table = inner.table.lock().expect("job table poisoned");
    if let Some(entry) = table.jobs.get_mut(&id) {
        match outcome {
            Ok(result) => {
                entry.state = JobState::Done;
                entry.result = Some(result);
            }
            Err(message) => {
                entry.state = JobState::Failed;
                entry.error = Some(message);
            }
        }
    }
    drop(table);
    inner.journal_terminal(id, op);
    inner.settled.notify_all();
}

/// Re-admits one journal orphan under a fresh id. Runs before the
/// worker pool exists, so it mutates `inner` directly: no admission
/// bound (a pre-crash backlog must not be dropped), no stopping check.
/// A spec that no longer validates is marked Failed immediately — its
/// terminal mark keeps the journal from replaying it forever.
fn admit_replayed(inner: &mut Inner, old_id: u64, spec: JobSpec) {
    let table = inner.table.get_mut().expect("job table poisoned");
    let id = table.next_id;
    table.next_id += 1;
    let valid = job::resolve(&spec).map(|_| ());
    if let Some(journal) = &mut inner.journal {
        let journal = journal.get_mut().expect("journal poisoned");
        let appended = journal
            .accept(id, &spec, JobOrigin::Journal, Some(old_id))
            .and_then(|()| match &valid {
                Ok(()) => Ok(()),
                Err(_) => journal.terminal(id, "failed"),
            });
        match appended {
            Ok(()) => {
                inner.metrics.on_journal_accept();
                if valid.is_err() {
                    inner.metrics.on_journal_terminal();
                }
            }
            Err(err) => {
                inner.metrics.on_journal_error();
                eprintln!("# journal: failed to record replay of job {old_id}: {err}");
            }
        }
    }
    let entry = match valid {
        Ok(()) => {
            let shard_idx = usize::try_from(id % inner.shards.len() as u64).expect("fits");
            let queue = inner.shards[shard_idx]
                .queue
                .get_mut()
                .expect("shard queue poisoned");
            queue.push_back(id);
            inner.metrics.on_accepted(shard_idx, queue.len());
            JobEntry {
                spec,
                state: JobState::Queued,
                origin: JobOrigin::Journal,
                result: None,
                error: None,
                queued_at: Instant::now(),
            }
        }
        Err(message) => JobEntry {
            spec,
            state: JobState::Failed,
            origin: JobOrigin::Journal,
            result: None,
            error: Some(message),
            queued_at: Instant::now(),
        },
    };
    table.jobs.insert(id, entry);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(seed: u64) -> JobSpec {
        let mut spec = JobSpec::new("GUPS", "Trident");
        spec.scale = 256;
        spec.samples = 1_000;
        spec.seed = seed;
        spec
    }

    fn small_service(workers: usize, queue_depth: usize, start_paused: bool) -> Service {
        Service::start(ServiceConfig {
            workers,
            queue_depth,
            start_paused,
        })
    }

    #[test]
    fn submit_validates_before_admitting() {
        let service = small_service(1, 4, true);
        let err = service.submit(JobSpec::new("Nope", "Trident")).unwrap_err();
        assert!(matches!(err, SubmitError::Invalid(_)));
        assert_eq!(err.code(), ErrorCode::BadRequest);
        assert!(service.list().is_empty(), "invalid jobs are never admitted");
        service.shutdown();
    }

    #[test]
    fn queue_full_is_typed_and_the_queue_drains() {
        let service = small_service(1, 2, true);
        let a = service.submit(quick_spec(1)).unwrap();
        let b = service.submit(quick_spec(2)).unwrap();
        let err = service.submit(quick_spec(3)).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { shard: 0, depth: 2 });
        assert_eq!(err.code(), ErrorCode::QueueFull);

        service.resume();
        assert!(matches!(service.wait(a), Some(JobWait::Done(_))));
        assert!(matches!(service.wait(b), Some(JobWait::Done(_))));
        // With the backlog drained there is room again.
        let c = service.submit(quick_spec(3)).unwrap();
        assert!(matches!(service.wait(c), Some(JobWait::Done(_))));
        service.shutdown();
    }

    #[test]
    fn cancel_only_reaches_queued_jobs() {
        let service = small_service(1, 8, true);
        let id = service.submit(quick_spec(1)).unwrap();
        assert_eq!(service.cancel(id), Some(JobState::Cancelled));
        assert_eq!(service.wait(id), Some(JobWait::Cancelled));
        assert_eq!(service.cancel(9999), None);

        let done = service.submit(quick_spec(2)).unwrap();
        service.resume();
        assert!(matches!(service.wait(done), Some(JobWait::Done(_))));
        // Terminal jobs are not cancellable; state is reported unchanged.
        assert_eq!(service.cancel(done), Some(JobState::Done));
        service.shutdown();
    }

    #[test]
    fn failed_jobs_surface_their_error() {
        let service = small_service(1, 4, false);
        // Fragmented memory makes the hugetlbfs-1G reservation fail at
        // launch — a run-time failure that submit-time validation cannot
        // see.
        let mut spec = quick_spec(1);
        spec.policy = "Hugetlbfs1G".to_owned();
        spec.fragment = true;
        let id = service.submit(spec).unwrap();
        match service.wait(id) {
            Some(JobWait::Failed(msg)) => assert!(msg.contains("launch failed"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(service.status(id), Some(JobState::Failed));
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_refuses_new_ones() {
        let service = small_service(2, 8, true);
        let ids: Vec<u64> = (0..4)
            .map(|i| service.submit(quick_spec(i)).unwrap())
            .collect();
        service.request_stop();
        assert_eq!(
            service.submit(quick_spec(99)).unwrap_err(),
            SubmitError::ShuttingDown
        );
        // Still paused and stopping: shutdown must drain regardless.
        service.shutdown();
        // The service is gone; we kept no handle — drain is observable
        // via the join in shutdown() not deadlocking, which this test's
        // completion demonstrates.
        drop(ids);
    }

    #[test]
    fn handle_maps_every_request_to_its_response() {
        let service = small_service(1, 4, false);
        let id = match service.handle(Request::Submit(quick_spec(7))) {
            Response::Submitted { id } => id,
            other => panic!("expected Submitted, got {other:?}"),
        };
        match service.handle(Request::Result { id }) {
            Response::Result { id: rid, .. } => assert_eq!(rid, id),
            other => panic!("expected Result, got {other:?}"),
        }
        match service.handle(Request::Status { id }) {
            Response::Status {
                id: rid,
                state,
                service: info,
            } => {
                assert_eq!(rid, id);
                assert_eq!(state, JobState::Done);
                assert_eq!(info.workers, 1);
                assert_eq!(info.queue_depth, 4);
                assert!(!info.paused);
                assert_eq!(info.queues, vec![0]);
            }
            other => panic!("expected Status, got {other:?}"),
        }
        match service.handle(Request::List) {
            Response::Jobs {
                jobs,
                service: info,
            } => {
                assert_eq!(jobs.len(), 1);
                assert_eq!(info.queues.len(), 1);
            }
            other => panic!("expected Jobs, got {other:?}"),
        }
        match service.handle(Request::Metrics) {
            Response::Metrics { text } => {
                assert!(
                    text.contains("tridentd_jobs_total{state=\"done\"} 1\n"),
                    "{text}"
                );
                trident_prof::prom::lint(&text).unwrap();
            }
            other => panic!("expected Metrics, got {other:?}"),
        }
        match service.handle(Request::Progress { id }) {
            Response::Progress {
                id: rid,
                state,
                progress,
            } => {
                assert_eq!(rid, id);
                assert_eq!(state, JobState::Done);
                assert_eq!(progress.samples_done, progress.samples_total);
                assert!(progress.samples_total > 0);
            }
            other => panic!("expected Progress, got {other:?}"),
        }
        match service.handle(Request::Progress { id: 42 }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
            other => panic!("expected Error, got {other:?}"),
        }
        match service.handle(Request::Status { id: 42 }) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
            other => panic!("expected Error, got {other:?}"),
        }
        assert_eq!(service.handle(Request::Shutdown), Response::ShuttingDown);
        service.shutdown();
    }
}
