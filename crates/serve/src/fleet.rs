//! Fan a grid of cells across a fleet of `tridentd` daemons.
//!
//! [`FleetClient`] owns N endpoints and runs a set of grid cells to
//! completion across them: every cell is submitted with a derived
//! idempotency key, endpoints that refuse (`queue_full`), die
//! (connection loss), or stall (deadline expiry) hand their cells back
//! for another endpoint to take over, and cells stuck in flight longer
//! than the hedge threshold are *duplicated* onto an idle endpoint.
//!
//! All of that aggression is safe for exactly one reason: a cell's
//! result is a pure function of its spec (`derive_cell_seed`), so a
//! retried, failed-over, or hedged cell provably produces the same
//! bytes the original would have. The fleet dedups by cell, keeps the
//! first result, and *asserts* byte-identity when a duplicate also
//! completes — a mismatch is not a race to tolerate but a determinism
//! violation to report ([`FleetError::ResultMismatch`]).
//!
//! Endpoints may carry a metrics address (`ADDR,metrics=ADDR`); those
//! are scored through `/healthz` before the run — a draining or
//! unreachable daemon starts dead instead of eating a timeout per cell.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use trident_fault::{mix64, WireInjector, WirePlan};

use crate::client::{Client, ClientError};
use crate::proto::{ErrorCode, JobResult, JobSpec, JobState, ProtoError, Request, Response};
use crate::retry::RetryPolicy;

/// Everything a fleet run can be tuned by.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Per-operation retry/backoff/deadline policy, applied per
    /// endpoint.
    pub retry: RetryPolicy,
    /// How long a cell may sit in flight before an idle endpoint
    /// duplicates it (at most once per cell).
    pub hedge_after: Duration,
    /// How often an endpoint polls a submitted job's status.
    pub poll_interval: Duration,
    /// Seeded wire-fault plan for chaos runs; each endpoint gets a
    /// decorrelated reseed of it.
    pub wire: Option<WirePlan>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            retry: RetryPolicy::default(),
            hedge_after: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            wire: None,
        }
    }
}

/// Why a fleet run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The endpoint list was empty.
    NoEndpoints,
    /// An endpoint spec was not `ADDR` or `ADDR,metrics=ADDR`.
    BadEndpoint(String),
    /// Every endpoint died (or started dead) with cells still unrun.
    AllEndpointsFailed {
        /// Cells that never produced a result.
        cells_remaining: usize,
    },
    /// A cell's job ran and failed — deterministic, so no retry can
    /// help; the whole grid aborts.
    JobFailed {
        /// The failing cell.
        cell: u64,
        /// The daemon's failure text.
        message: String,
    },
    /// Two runs of the same cell returned different bytes: a
    /// determinism violation, never tolerated.
    ResultMismatch {
        /// The offending cell.
        cell: u64,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoEndpoints => f.write_str("no endpoints given"),
            FleetError::BadEndpoint(spec) => {
                write!(f, "bad endpoint spec {spec:?} (want ADDR[,metrics=ADDR])")
            }
            FleetError::AllEndpointsFailed { cells_remaining } => write!(
                f,
                "every endpoint failed with {cells_remaining} cell(s) unfinished"
            ),
            FleetError::JobFailed { cell, message } => {
                write!(f, "cell {cell} failed deterministically: {message}")
            }
            FleetError::ResultMismatch { cell } => write!(
                f,
                "cell {cell} produced two different results — determinism violation"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Counters a fleet run accumulates; scraped by the chaos CI leg to
/// prove retries stay bounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Submit requests sent (first tries and retries).
    pub submits: u64,
    /// Submits the daemons accepted.
    pub accepted: u64,
    /// Submits refused with `queue_full`.
    pub queue_full: u64,
    /// Per-operation deadlines that expired.
    pub timeouts: u64,
    /// Transport failures (connection loss, poisoned streams, I/O).
    pub io_errors: u64,
    /// Answers that decoded as malformed (wire corruption).
    pub malformed: u64,
    /// Cells handed back because their endpoint died.
    pub failovers: u64,
    /// Cells duplicated onto an idle endpoint.
    pub hedges: u64,
    /// Results that arrived for an already-completed cell.
    pub duplicates: u64,
    /// Duplicate results that differed (also a [`FleetError::ResultMismatch`]).
    pub mismatches: u64,
}

#[derive(Debug, Default)]
struct SharedStats {
    submits: AtomicU64,
    accepted: AtomicU64,
    queue_full: AtomicU64,
    timeouts: AtomicU64,
    io_errors: AtomicU64,
    malformed: AtomicU64,
    failovers: AtomicU64,
    hedges: AtomicU64,
    duplicates: AtomicU64,
    mismatches: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> FleetStats {
        let load = |c: &AtomicU64| c.load(Ordering::SeqCst);
        FleetStats {
            submits: load(&self.submits),
            accepted: load(&self.accepted),
            queue_full: load(&self.queue_full),
            timeouts: load(&self.timeouts),
            io_errors: load(&self.io_errors),
            malformed: load(&self.malformed),
            failovers: load(&self.failovers),
            hedges: load(&self.hedges),
            duplicates: load(&self.duplicates),
            mismatches: load(&self.mismatches),
        }
    }
}

/// What a completed fleet run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// One result per requested cell, sorted by cell index — identical
    /// bytes to running every cell on one daemon.
    pub results: Vec<(u64, JobResult)>,
    /// The run's retry/failover accounting.
    pub stats: FleetStats,
}

/// What probing an endpoint's `/healthz` found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// 200: accepting work.
    Serving,
    /// 503: draining for shutdown.
    Draining {
        /// The `Retry-After` hint, in seconds, when the daemon sent one.
        retry_after: Option<u64>,
    },
    /// No HTTP answer within the timeout.
    Unreachable,
}

/// Issues one `GET /healthz` to a metrics endpoint and classifies the
/// answer. Used by `tridentctl health` and by [`FleetClient`] to score
/// endpoints before a run.
#[must_use]
pub fn probe_healthz(addr: &str, timeout: Duration) -> Health {
    let Some(sock) = addr.to_socket_addrs().ok().and_then(|mut it| it.next()) else {
        return Health::Unreachable;
    };
    let Ok(mut stream) = TcpStream::connect_timeout(&sock, timeout) else {
        return Health::Unreachable;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
        || stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .is_err()
    {
        return Health::Unreachable;
    }
    let mut raw = String::new();
    if stream.read_to_string(&mut raw).is_err() || raw.is_empty() {
        return Health::Unreachable;
    }
    let status = raw.lines().next().unwrap_or("");
    if status.contains(" 200") {
        return Health::Serving;
    }
    if status.contains(" 503") {
        let retry_after = raw.lines().find_map(|line| {
            let (name, value) = line.split_once(':')?;
            if name.eq_ignore_ascii_case("retry-after") {
                value.trim().parse().ok()
            } else {
                None
            }
        });
        return Health::Draining { retry_after };
    }
    Health::Unreachable
}

#[derive(Debug, Clone)]
struct Endpoint {
    addr: String,
    metrics: Option<String>,
}

fn parse_endpoint(spec: &str) -> Result<Endpoint, FleetError> {
    let mut parts = spec.split(',');
    let addr = parts.next().unwrap_or("").trim();
    if addr.is_empty() {
        return Err(FleetError::BadEndpoint(spec.to_owned()));
    }
    let mut metrics = None;
    for part in parts {
        match part.trim().strip_prefix("metrics=") {
            Some(m) if !m.is_empty() => metrics = Some(m.to_owned()),
            _ => return Err(FleetError::BadEndpoint(spec.to_owned())),
        }
    }
    Ok(Endpoint {
        addr: addr.to_owned(),
        metrics,
    })
}

struct Inflight {
    started: Instant,
    hedged: bool,
}

struct Shared {
    /// Cells waiting for an owner. Lock order: queue → results → inflight.
    queue: Mutex<VecDeque<u64>>,
    results: Mutex<HashMap<u64, JobResult>>,
    inflight: Mutex<HashMap<u64, Inflight>>,
    failure: Mutex<Option<FleetError>>,
    /// Cells without a recorded result yet.
    remaining: AtomicUsize,
    stats: SharedStats,
}

impl Shared {
    fn new(cells: &[u64]) -> Shared {
        Shared {
            queue: Mutex::new(cells.iter().copied().collect()),
            results: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            failure: Mutex::new(None),
            remaining: AtomicUsize::new(cells.len()),
            stats: SharedStats::default(),
        }
    }

    fn done(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) == 0
            || self.failure.lock().expect("failure poisoned").is_some()
    }

    fn fail(&self, err: FleetError) {
        let mut failure = self.failure.lock().expect("failure poisoned");
        failure.get_or_insert(err);
    }

    /// The next cell for an idle endpoint: a queued cell if any, else a
    /// hedge of the oldest over-age in-flight cell (at most one hedge
    /// per cell).
    fn take_cell(&self, hedge_after: Duration) -> Option<u64> {
        loop {
            let queued = self.queue.lock().expect("queue poisoned").pop_front();
            match queued {
                Some(cell) => {
                    if self
                        .results
                        .lock()
                        .expect("results poisoned")
                        .contains_key(&cell)
                    {
                        continue; // a hedge already finished it
                    }
                    self.inflight.lock().expect("inflight poisoned").insert(
                        cell,
                        Inflight {
                            started: Instant::now(),
                            hedged: false,
                        },
                    );
                    return Some(cell);
                }
                None => break,
            }
        }
        let now = Instant::now();
        let mut inflight = self.inflight.lock().expect("inflight poisoned");
        let candidate = inflight
            .iter_mut()
            .filter(|(_, f)| !f.hedged && now.duration_since(f.started) >= hedge_after)
            .min_by_key(|(_, f)| f.started)
            .map(|(cell, f)| {
                f.hedged = true;
                *cell
            });
        if candidate.is_some() {
            self.stats.hedges.fetch_add(1, Ordering::SeqCst);
        }
        candidate
    }

    /// Hands a cell back after its endpoint died.
    fn requeue(&self, cell: u64) {
        self.inflight
            .lock()
            .expect("inflight poisoned")
            .remove(&cell);
        self.queue.lock().expect("queue poisoned").push_back(cell);
        self.stats.failovers.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a completed cell; duplicates must match byte-for-byte.
    /// Returns `false` when a mismatch aborted the run.
    fn record(&self, cell: u64, result: JobResult) -> bool {
        let mut results = self.results.lock().expect("results poisoned");
        if let Some(prev) = results.get(&cell) {
            self.stats.duplicates.fetch_add(1, Ordering::SeqCst);
            if *prev != result {
                self.stats.mismatches.fetch_add(1, Ordering::SeqCst);
                drop(results);
                self.fail(FleetError::ResultMismatch { cell });
                return false;
            }
            return true;
        }
        results.insert(cell, result);
        drop(results);
        self.inflight
            .lock()
            .expect("inflight poisoned")
            .remove(&cell);
        self.remaining.fetch_sub(1, Ordering::SeqCst);
        true
    }
}

/// A client that runs grid cells across a fleet of daemons. See the
/// module docs for the failover/hedging model.
#[derive(Debug)]
pub struct FleetClient {
    endpoints: Vec<Endpoint>,
    config: FleetConfig,
}

impl FleetClient {
    /// Builds a fleet from endpoint specs (`ADDR` or
    /// `ADDR,metrics=ADDR`).
    ///
    /// # Errors
    ///
    /// [`FleetError::NoEndpoints`] on an empty list,
    /// [`FleetError::BadEndpoint`] on an unparsable spec.
    pub fn new(endpoints: &[String], config: FleetConfig) -> Result<FleetClient, FleetError> {
        if endpoints.is_empty() {
            return Err(FleetError::NoEndpoints);
        }
        let endpoints = endpoints
            .iter()
            .map(|spec| parse_endpoint(spec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FleetClient { endpoints, config })
    }

    /// The parsed endpoint addresses, in the order given.
    #[must_use]
    pub fn addrs(&self) -> Vec<String> {
        self.endpoints.iter().map(|e| e.addr.clone()).collect()
    }

    /// Runs every cell of `cells` (as `base` with
    /// `cell_index = Some(cell)` and a derived idempotency key) across
    /// the fleet and returns one result per cell, sorted by cell index
    /// — byte-identical to running the same cells on one daemon.
    ///
    /// # Errors
    ///
    /// See [`FleetError`]; on error some daemons may still be running
    /// already-submitted duplicates (harmless: deterministic).
    pub fn run_cells(&self, base: &JobSpec, cells: &[u64]) -> Result<FleetOutcome, FleetError> {
        if cells.is_empty() {
            return Ok(FleetOutcome {
                results: Vec::new(),
                stats: FleetStats::default(),
            });
        }
        // Score endpoints that expose a metrics address: a draining or
        // unreachable daemon starts dead instead of costing a timeout
        // per cell.
        let live: Vec<(usize, &Endpoint)> = self
            .endpoints
            .iter()
            .enumerate()
            .filter(|(_, e)| match &e.metrics {
                None => true,
                Some(addr) => {
                    probe_healthz(addr, self.config.retry.connect_timeout) == Health::Serving
                }
            })
            .collect();
        if live.is_empty() {
            return Err(FleetError::AllEndpointsFailed {
                cells_remaining: cells.len(),
            });
        }
        let shared = Shared::new(cells);
        std::thread::scope(|scope| {
            for (idx, endpoint) in &live {
                let shared = &shared;
                let config = &self.config;
                // Each endpoint's chaos stream is decorrelated from its
                // peers' by reseeding the shared plan per endpoint.
                let wire = config
                    .wire
                    .map(|plan| plan.reseeded(mix64(plan.seed() ^ (*idx as u64 + 1))));
                let addr = endpoint.addr.clone();
                scope.spawn(move || endpoint_worker(shared, &addr, config, base, wire));
            }
        });
        let stats = shared.stats.snapshot();
        if let Some(err) = shared.failure.lock().expect("failure poisoned").take() {
            return Err(err);
        }
        let remaining = shared.remaining.load(Ordering::SeqCst);
        if remaining > 0 {
            return Err(FleetError::AllEndpointsFailed {
                cells_remaining: remaining,
            });
        }
        let mut results: Vec<(u64, JobResult)> = shared
            .results
            .into_inner()
            .expect("results poisoned")
            .into_iter()
            .collect();
        results.sort_by_key(|(cell, _)| *cell);
        Ok(FleetOutcome { results, stats })
    }
}

/// The idempotency key a fleet submission carries: spec identity plus
/// cell index, so any two submissions of the same logical cell collide.
fn cell_key(base: &JobSpec, cell: u64) -> String {
    format!(
        "{}/{}/s{}/x{}/c{}",
        base.workload, base.policy, base.seed, base.scale, cell
    )
}

enum CellOutcome {
    /// Result recorded (possibly as a verified duplicate).
    Recorded,
    /// The endpoint is unusable; the caller requeues and retires.
    EndpointDead,
    /// A grid-level failure was recorded; stop taking cells.
    Abort,
}

fn endpoint_worker(
    shared: &Shared,
    addr: &str,
    config: &FleetConfig,
    base: &JobSpec,
    wire: Option<WirePlan>,
) {
    let mut client: Option<Client> = None;
    let mut injector = wire.map(WireInjector::new);
    loop {
        if shared.done() {
            return;
        }
        let Some(cell) = shared.take_cell(config.hedge_after) else {
            // Nothing to take right now; cells are in flight elsewhere.
            std::thread::sleep(config.poll_interval);
            continue;
        };
        match run_cell(shared, &mut client, &mut injector, addr, config, base, cell) {
            CellOutcome::Recorded => {}
            CellOutcome::EndpointDead => {
                shared.requeue(cell);
                return;
            }
            CellOutcome::Abort => return,
        }
    }
}

/// Parks the connection's wire injector and drops the stream, so the
/// fault stream survives the reconnect.
fn drop_client(client: &mut Option<Client>, injector: &mut Option<WireInjector>) {
    if let Some(mut c) = client.take() {
        if let Some(w) = c.take_wire_faults() {
            *injector = Some(w);
        }
    }
}

/// Ensures a live connection, re-attaching the parked injector.
fn ensure_client(
    client: &mut Option<Client>,
    injector: &mut Option<WireInjector>,
    addr: &str,
    policy: RetryPolicy,
) -> bool {
    if client.is_none() {
        match Client::connect_with(addr, policy) {
            Ok(mut c) => {
                if let Some(w) = injector.take() {
                    c.set_wire_faults(w);
                }
                *client = Some(c);
            }
            Err(_) => return false,
        }
    }
    true
}

/// Notes a transport/protocol error in the stats; returns whether the
/// connection must be re-established.
fn note_error(shared: &Shared, err: &ClientError) -> bool {
    match err {
        ClientError::Proto(ProtoError::Timeout { .. }) => {
            shared.stats.timeouts.fetch_add(1, Ordering::SeqCst);
            true
        }
        ClientError::Proto(_) => {
            // A mangled-but-consumed line: framing is intact, the
            // connection stays usable.
            shared.stats.malformed.fetch_add(1, Ordering::SeqCst);
            false
        }
        ClientError::Io(_) | ClientError::ConnectionClosed | ClientError::Poisoned => {
            shared.stats.io_errors.fetch_add(1, Ordering::SeqCst);
            true
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run_cell(
    shared: &Shared,
    client: &mut Option<Client>,
    injector: &mut Option<WireInjector>,
    addr: &str,
    config: &FleetConfig,
    base: &JobSpec,
    cell: u64,
) -> CellOutcome {
    let mut spec = base.clone();
    spec.cell_index = Some(cell);
    spec.key = Some(cell_key(base, cell));
    let policy = config.retry;
    let attempts = policy.max_attempts.max(1);
    for attempt in 0..attempts {
        if shared.done() {
            // A peer finished the grid (or failed it) while we retried.
            return CellOutcome::Recorded;
        }
        if attempt > 0 {
            std::thread::sleep(policy.backoff(attempt - 1));
        }
        if !ensure_client(client, injector, addr, policy) {
            return CellOutcome::EndpointDead;
        }
        let cli = client.as_mut().expect("just ensured");
        shared.stats.submits.fetch_add(1, Ordering::SeqCst);
        let id = match cli.request(&Request::Submit(spec.clone())) {
            Ok(Response::Submitted { id }) => id,
            Ok(Response::Error { code, message }) => match code {
                ErrorCode::QueueFull => {
                    shared.stats.queue_full.fetch_add(1, Ordering::SeqCst);
                    continue;
                }
                ErrorCode::ShuttingDown => return CellOutcome::EndpointDead,
                _ => {
                    shared.fail(FleetError::JobFailed { cell, message });
                    return CellOutcome::Abort;
                }
            },
            Ok(_) => {
                // A response for some other request: the stream is
                // confused; start over on a fresh connection.
                shared.stats.io_errors.fetch_add(1, Ordering::SeqCst);
                drop_client(client, injector);
                continue;
            }
            Err(err) => {
                if note_error(shared, &err) {
                    drop_client(client, injector);
                }
                continue;
            }
        };
        shared.stats.accepted.fetch_add(1, Ordering::SeqCst);
        match poll_cell(shared, client, injector, config, id, cell) {
            PollOutcome::Recorded => return CellOutcome::Recorded,
            PollOutcome::Abort => return CellOutcome::Abort,
            PollOutcome::Retry => {}
        }
    }
    CellOutcome::EndpointDead
}

enum PollOutcome {
    Recorded,
    /// Something went wrong that a fresh submission can fix.
    Retry,
    Abort,
}

fn poll_cell(
    shared: &Shared,
    client: &mut Option<Client>,
    injector: &mut Option<WireInjector>,
    config: &FleetConfig,
    id: u64,
    cell: u64,
) -> PollOutcome {
    let deadline = Instant::now() + config.retry.result_timeout;
    loop {
        if shared.done() {
            return PollOutcome::Recorded;
        }
        if Instant::now() > deadline {
            shared.stats.timeouts.fetch_add(1, Ordering::SeqCst);
            return PollOutcome::Retry;
        }
        let Some(cli) = client.as_mut() else {
            return PollOutcome::Retry;
        };
        let state = match cli.request(&Request::Status { id }) {
            Ok(Response::Status { state, .. }) => state,
            Ok(Response::Error {
                code: ErrorCode::UnknownJob,
                ..
            }) => {
                // The daemon restarted and lost the job table (its
                // journal will also re-run it, but we need the result
                // now): resubmit.
                return PollOutcome::Retry;
            }
            Ok(_) => return PollOutcome::Retry,
            Err(err) => {
                if note_error(shared, &err) {
                    drop_client(client, injector);
                }
                return PollOutcome::Retry;
            }
        };
        match state {
            JobState::Done => {
                return match cli.request(&Request::Result { id }) {
                    Ok(Response::Result { result, .. }) => {
                        if shared.record(cell, result) {
                            PollOutcome::Recorded
                        } else {
                            PollOutcome::Abort
                        }
                    }
                    Ok(Response::Error {
                        code: ErrorCode::JobFailed,
                        message,
                    }) => {
                        shared.fail(FleetError::JobFailed { cell, message });
                        PollOutcome::Abort
                    }
                    Ok(_) => PollOutcome::Retry,
                    Err(err) => {
                        if note_error(shared, &err) {
                            drop_client(client, injector);
                        }
                        PollOutcome::Retry
                    }
                };
            }
            JobState::Failed => {
                // Deterministic failure: retrying elsewhere would fail
                // identically. Fetch the error text for the report.
                let message = match cli.request(&Request::Result { id }) {
                    Ok(Response::Error { message, .. }) => message,
                    _ => "job failed".to_owned(),
                };
                shared.fail(FleetError::JobFailed { cell, message });
                return PollOutcome::Abort;
            }
            JobState::Cancelled => return PollOutcome::Retry,
            JobState::Queued | JobState::Running => {
                std::thread::sleep(config.poll_interval);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_specs_parse_with_optional_metrics() {
        let e = parse_endpoint("127.0.0.1:7117").unwrap();
        assert_eq!(e.addr, "127.0.0.1:7117");
        assert_eq!(e.metrics, None);
        let e = parse_endpoint("127.0.0.1:7117,metrics=127.0.0.1:9100").unwrap();
        assert_eq!(e.metrics.as_deref(), Some("127.0.0.1:9100"));
        assert!(parse_endpoint("").is_err());
        assert!(parse_endpoint("a:1,bogus=x").is_err());
        assert!(parse_endpoint("a:1,metrics=").is_err());
    }

    #[test]
    fn empty_fleet_is_refused_and_empty_grid_is_trivial() {
        assert_eq!(
            FleetClient::new(&[], FleetConfig::default()).unwrap_err(),
            FleetError::NoEndpoints
        );
        let fleet = FleetClient::new(
            &["127.0.0.1:1".to_owned()], // never contacted for zero cells
            FleetConfig::default(),
        )
        .unwrap();
        let outcome = fleet
            .run_cells(&JobSpec::new("GUPS", "Trident"), &[])
            .unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats, FleetStats::default());
    }

    #[test]
    fn cell_keys_bind_spec_identity_and_cell() {
        let base = JobSpec::new("GUPS", "Trident");
        let a = cell_key(&base, 3);
        let b = cell_key(&base, 4);
        assert_ne!(a, b);
        let mut other = base.clone();
        other.seed = 99;
        assert_ne!(cell_key(&other, 3), a, "seed must be part of the key");
    }

    #[test]
    fn take_cell_hedges_only_over_age_cells_once() {
        let shared = Shared::new(&[1]);
        assert_eq!(shared.take_cell(Duration::from_secs(0)), Some(1));
        // Immediately hedgeable with a zero threshold, but only once.
        assert_eq!(shared.take_cell(Duration::from_secs(0)), Some(1));
        assert_eq!(shared.take_cell(Duration::from_secs(0)), None);
        assert_eq!(shared.stats.hedges.load(Ordering::SeqCst), 1);
        // A generous threshold never hedges a fresh cell.
        let shared = Shared::new(&[2]);
        assert_eq!(shared.take_cell(Duration::from_secs(3600)), Some(2));
        assert_eq!(shared.take_cell(Duration::from_secs(3600)), None);
    }

    #[test]
    fn probing_an_unbound_port_is_unreachable() {
        // Port 1 on localhost: connect refused immediately.
        assert_eq!(
            probe_healthz("127.0.0.1:1", Duration::from_millis(200)),
            Health::Unreachable
        );
    }
}
