//! Building a workload's virtual-address layout.
//!
//! Layouts can be materialized in one shot ([`WorkloadSpec::build_layout`])
//! or step by step from an [`AllocPlan`] — the simulator uses the latter so
//! that page faults interleave with allocation the way they do in a real
//! run. The interleaving matters: when Redis allocates incrementally, the
//! fault handler never sees a 1GB-mappable range and 1GB pages can only
//! come from later promotion (Table 3's "page-fault only" column).

use rand::Rng;
use trident_types::{PageGeometry, PageSize, Vpn};
use trident_vm::{AddressSpace, VmaKind};

use crate::{AllocPattern, MemoryScale, WorkloadSpec};

/// A contiguous allocated virtual range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRange {
    /// First page.
    pub start: Vpn,
    /// Length in base pages.
    pub pages: u64,
}

/// One allocation the workload performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStep {
    /// Pages to allocate.
    pub pages: u64,
    /// Unallocated gap preceding the range.
    pub gap: u64,
    /// VMA kind.
    pub kind: VmaKind,
    /// Alignment request.
    pub align: PageSize,
}

/// The ordered allocations of one workload instance (heap chunks followed
/// by the stack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocPlan {
    /// The steps, in program order. The final step is the stack.
    pub steps: Vec<AllocStep>,
}

impl AllocPlan {
    /// Executes one step against `space`, returning the realized range.
    ///
    /// # Panics
    ///
    /// Panics if the address space cannot place the range (zero-sized
    /// steps are never produced by [`WorkloadSpec::plan`]).
    pub fn execute_step(space: &mut AddressSpace, step: &AllocStep) -> ChunkRange {
        let start = space
            .mmap(step.pages, step.kind, step.align, step.gap)
            .expect("plan steps are non-empty");
        ChunkRange {
            start,
            pages: step.pages,
        }
    }
}

/// The realized virtual-address layout of one workload instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Heap/arena ranges in allocation order.
    pub heap: Vec<ChunkRange>,
    /// The stack range.
    pub stack: ChunkRange,
    /// Total heap pages.
    pub heap_pages: u64,
}

impl Layout {
    /// Assembles a layout from executed plan ranges (heap chunks in order,
    /// stack last — the same order [`WorkloadSpec::plan`] emits).
    ///
    /// # Panics
    ///
    /// Panics if `ranges` is empty.
    #[must_use]
    pub fn from_ranges(mut ranges: Vec<ChunkRange>) -> Layout {
        let stack = ranges.pop().expect("plan includes a stack");
        let heap_pages = ranges.iter().map(|c| c.pages).sum();
        Layout {
            heap: ranges,
            stack,
            heap_pages,
        }
    }

    /// Resolves a global heap page index (0..heap_pages) to a virtual
    /// page.
    ///
    /// # Panics
    ///
    /// Panics if `index >= heap_pages`.
    #[must_use]
    pub fn heap_page(&self, index: u64) -> Vpn {
        let mut remaining = index;
        for chunk in &self.heap {
            if remaining < chunk.pages {
                return chunk.start + remaining;
            }
            remaining -= chunk.pages;
        }
        panic!("heap index {index} out of range");
    }
}

/// Appends incremental allocation steps totalling `total_pages`.
fn push_incremental<R: Rng + ?Sized>(
    steps: &mut Vec<AllocStep>,
    geo: PageGeometry,
    chunk_bytes_scaled: u64,
    gap_chance: f64,
    total_pages: u64,
    rng: &mut R,
) {
    let chunk_pages = geo.pages_for_bytes(chunk_bytes_scaled).max(1);
    let mut allocated = 0;
    while allocated < total_pages {
        let pages = chunk_pages.min(total_pages - allocated);
        let gap = if rng.gen_bool(gap_chance) {
            rng.gen_range(1..=geo.base_pages(PageSize::new(1)))
        } else {
            0
        };
        steps.push(AllocStep {
            pages,
            gap,
            kind: VmaKind::Anon,
            align: PageSize::BASE,
        });
        allocated += pages;
    }
}

impl WorkloadSpec {
    /// Plans this workload's allocations at `scale`: heap chunks per the
    /// allocation pattern, then the stack.
    pub fn plan<R: Rng + ?Sized>(
        &self,
        geo: PageGeometry,
        scale: MemoryScale,
        rng: &mut R,
    ) -> AllocPlan {
        let total_pages = geo
            .pages_for_bytes(scale.apply(self.footprint_bytes))
            .max(1);
        let mut steps = Vec::new();
        match self.alloc {
            AllocPattern::Bulk => {
                steps.push(AllocStep {
                    pages: total_pages,
                    gap: 0,
                    kind: VmaKind::Anon,
                    align: PageSize::new(2),
                });
            }
            AllocPattern::Incremental {
                chunk_bytes,
                gap_chance,
            } => {
                push_incremental(
                    &mut steps,
                    geo,
                    scale.apply(chunk_bytes),
                    gap_chance,
                    total_pages,
                    rng,
                );
            }
            AllocPattern::IncrementalWithFragmentedTail {
                chunk_bytes,
                gap_chance,
                tail_fraction,
                tail_chunk_bytes,
                tail_gap_chance,
            } => {
                let tail_pages = ((total_pages as f64 * tail_fraction) as u64).max(1);
                push_incremental(
                    &mut steps,
                    geo,
                    scale.apply(chunk_bytes),
                    gap_chance,
                    total_pages - tail_pages,
                    rng,
                );
                push_incremental(
                    &mut steps,
                    geo,
                    scale.apply(tail_chunk_bytes),
                    tail_gap_chance,
                    tail_pages,
                    rng,
                );
            }
        }
        // The stack sits far from the heap, as on real systems. Stacks are
        // small (8MB) and deliberately *not* scaled: scaling one down
        // would shrink it below the 4KB L1 TLB's reach and erase the
        // stack-miss sensitivity the paper observes for Redis and GUPS.
        // It is, however, capped below the giant-page size: on real
        // hardware an 8MB stack can never hold a 1GB page, and that must
        // stay true under scaled geometries too (Table 4's "NA" rows).
        let stack_pages = geo
            .pages_for_bytes(self.stack_bytes)
            .clamp(1, geo.base_pages(PageSize::new(2)) / 2);
        steps.push(AllocStep {
            pages: stack_pages,
            gap: geo.base_pages(PageSize::new(2)),
            kind: VmaKind::Stack,
            align: PageSize::new(1),
        });
        AllocPlan { steps }
    }

    /// Materializes this workload's VMAs in `space` at `scale` in one
    /// shot, returning the layout used by the access sampler.
    ///
    /// Bulk allocators create a single giant-aligned VMA (maximally
    /// 1GB-mappable); incremental allocators create a sequence of chunks
    /// with randomized gaps, so part of the space is 2MB-mappable but not
    /// 1GB-mappable — the structural property behind Figure 3.
    pub fn build_layout<R: Rng + ?Sized>(
        &self,
        space: &mut AddressSpace,
        scale: MemoryScale,
        rng: &mut R,
    ) -> Layout {
        let plan = self.plan(space.geometry(), scale, rng);
        let ranges = plan
            .steps
            .iter()
            .map(|step| AllocPlan::execute_step(space, step))
            .collect();
        Layout::from_ranges(ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use trident_types::AsId;
    use trident_vm::mappable_bytes;

    fn build(name: &str, scale: u64) -> (AddressSpace, Layout) {
        let geo = PageGeometry::X86_64;
        let mut space = AddressSpace::new(AsId::new(1), geo);
        let spec = WorkloadSpec::by_name(name).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let layout = spec.build_layout(&mut space, MemoryScale::new(scale), &mut rng);
        (space, layout)
    }

    #[test]
    fn bulk_layout_is_one_heap_vma_plus_stack() {
        let (space, layout) = build("GUPS", 16);
        assert_eq!(layout.heap.len(), 1);
        assert_eq!(space.vmas().count(), 2);
        // 32GB / 16 = 2GB of heap.
        assert_eq!(layout.heap_pages, 2 * 1024 * 1024 / 4);
        // Bulk heap is fully giant-mappable.
        let giant = mappable_bytes(&space, PageSize::new(2));
        assert!(giant >= layout.heap_pages * 4096 - (1 << 30));
    }

    #[test]
    fn incremental_layout_leaves_a_mappability_gap() {
        let (space, layout) = build("Redis", 16);
        assert!(
            layout.heap.len() > 100,
            "many chunks: {}",
            layout.heap.len()
        );
        let huge = mappable_bytes(&space, PageSize::new(1));
        let giant = mappable_bytes(&space, PageSize::new(2));
        // Figure 3's structural property: GBs mappable at 2MB but not 1GB.
        assert!(huge > giant, "huge {huge} should exceed giant {giant}");
        assert!(huge - giant > 100 * 2 * 1024 * 1024);
    }

    #[test]
    fn plan_and_build_layout_agree() {
        let geo = PageGeometry::X86_64;
        let spec = WorkloadSpec::by_name("Memcached").unwrap();
        let scale = MemoryScale::new(64);
        let mut rng_a = SmallRng::seed_from_u64(9);
        let mut rng_b = SmallRng::seed_from_u64(9);
        let plan = spec.plan(geo, scale, &mut rng_a);
        let mut space = AddressSpace::new(AsId::new(1), geo);
        let ranges: Vec<ChunkRange> = plan
            .steps
            .iter()
            .map(|s| AllocPlan::execute_step(&mut space, s))
            .collect();
        let stepwise = Layout::from_ranges(ranges);
        let mut space_b = AddressSpace::new(AsId::new(2), geo);
        let oneshot = spec.build_layout(&mut space_b, scale, &mut rng_b);
        assert_eq!(stepwise, oneshot);
    }

    #[test]
    fn heap_page_resolves_across_chunks() {
        let (_, layout) = build("Redis", 64);
        let first = layout.heap_page(0);
        assert_eq!(first, layout.heap[0].start);
        let last = layout.heap_page(layout.heap_pages - 1);
        let tail = layout.heap.last().unwrap();
        assert_eq!(last, tail.start + (tail.pages - 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn heap_page_rejects_out_of_range() {
        let (_, layout) = build("GUPS", 64);
        let _ = layout.heap_page(layout.heap_pages);
    }

    #[test]
    fn stack_is_a_separate_stack_vma() {
        let (space, layout) = build("GUPS", 16);
        let vma = space.vma_containing(layout.stack.start).unwrap();
        assert_eq!(vma.kind, VmaKind::Stack);
    }

    #[test]
    fn layouts_are_deterministic_per_seed() {
        let (_, a) = build("Memcached", 64);
        let (_, b) = build("Memcached", 64);
        assert_eq!(a, b);
    }
}
