//! The workload specifications.

use trident_types::{GIB, MIB};

/// How the application allocates its virtual memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocPattern {
    /// One large allocation up front (XSBench, GUPS, Graph500's main
    /// arrays, CG): the whole footprint is one VMA, almost all of it
    /// 1GB-mappable, and the fault handler alone can install giant pages.
    Bulk,
    /// Memory arrives in chunks over time, with occasional virtual-address
    /// gaps between chunks (guard pages, allocator arenas, freed ranges
    /// that are never reused). This is the Redis/Memcached/SVM/Btree
    /// pattern: much of the space ends up 2MB-mappable but *not*
    /// 1GB-mappable, and giant pages can only come from later promotion.
    Incremental {
        /// Bytes per allocation chunk (unscaled).
        chunk_bytes: u64,
        /// Probability that a chunk is preceded by a VA gap.
        gap_chance: f64,
    },
    /// Like [`AllocPattern::Incremental`], but the last slice of the
    /// footprint arrives in small, gap-riddled chunks — frontier queues
    /// and scratch buffers allocated and re-allocated during execution
    /// (Graph500, SVM). That tail is 2MB-mappable but almost never
    /// 1GB-mappable, and it is hot (see
    /// [`AccessPattern::HotspotWithTailSpike`]).
    IncrementalWithFragmentedTail {
        /// Bytes per main-phase chunk (unscaled).
        chunk_bytes: u64,
        /// Gap probability in the main phase.
        gap_chance: f64,
        /// Fraction of the footprint allocated in the fragmented tail.
        tail_fraction: f64,
        /// Bytes per tail chunk (unscaled; between the huge and giant
        /// page sizes, so the tail stays 2MB-mappable).
        tail_chunk_bytes: u64,
        /// Gap probability in the tail (high).
        tail_gap_chance: f64,
    },
}

/// How the application touches its memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Uniform random over the whole footprint (GUPS).
    UniformRandom,
    /// A hot subset at the *start* of the heap absorbs most accesses.
    Hotspot {
        /// Fraction of the footprint that is hot.
        hot_fraction: f64,
        /// Fraction of accesses that go to the hot subset.
        hot_weight: f64,
    },
    /// A hot subset at the *end* of the heap — the most recently
    /// allocated, most gap-fragmented part of the space.
    HotspotTail {
        /// Fraction of the footprint that is hot.
        hot_fraction: f64,
        /// Fraction of accesses that go to the hot subset.
        hot_weight: f64,
    },
    /// A large warm prefix plus a *small, very hot spike* at the
    /// gap-fragmented end of the heap. This is the Graph500/SVM structure
    /// behind Figure 4: the spike (≈800MB for Graph500) lands on regions
    /// that are 2MB- but not 1GB-mappable, which is what makes
    /// Trident-1Gonly lose even to THP (Figure 11) — those regions fall
    /// back to 4KB pages when 2MB is disallowed.
    HotspotWithTailSpike {
        /// Fraction of the footprint in the warm prefix.
        hot_fraction: f64,
        /// Fraction of accesses to the warm prefix.
        hot_weight: f64,
        /// Fraction of the footprint in the tail spike.
        spike_fraction: f64,
        /// Fraction of accesses to the tail spike.
        spike_weight: f64,
    },
    /// Mostly-sequential scanning with periodic restarts (CG).
    Scan,
}

/// The memory-scale divisor applied to footprints when building layouts.
///
/// # Examples
///
/// ```
/// use trident_workloads::MemoryScale;
/// assert_eq!(MemoryScale::default().divisor(), 16);
/// assert_eq!(MemoryScale::new(1).apply(32), 32);
/// assert_eq!(MemoryScale::new(16).apply(32), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryScale(u64);

impl MemoryScale {
    /// Creates a scale with the given divisor.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn new(divisor: u64) -> MemoryScale {
        assert!(divisor > 0, "scale divisor must be positive");
        MemoryScale(divisor)
    }

    /// The divisor.
    #[must_use]
    pub fn divisor(self) -> u64 {
        self.0
    }

    /// Scales a byte quantity down.
    #[must_use]
    pub fn apply(self, bytes: u64) -> u64 {
        bytes / self.0
    }
}

impl Default for MemoryScale {
    /// The default experiment scale: 1/16 (the paper's 384GB host becomes
    /// 24GB of simulated frames).
    fn default() -> Self {
        MemoryScale(16)
    }
}

/// A modeled application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Application name as in Table 2.
    pub name: &'static str,
    /// Memory footprint in bytes (Table 2), unscaled.
    pub footprint_bytes: u64,
    /// Worker threads (Table 2).
    pub threads: u32,
    /// Allocation behaviour.
    pub alloc: AllocPattern,
    /// Access behaviour.
    pub access: AccessPattern,
    /// Fraction of accesses that hit the stack (Redis and GUPS are
    /// stack-TLB-sensitive; hugetlbfs cannot help them there).
    pub stack_access_fraction: f64,
    /// Stack size in bytes, unscaled.
    pub stack_bytes: u64,
    /// Fraction of write accesses.
    pub write_fraction: f64,
    /// Calibration anchor: fraction of execution cycles spent in page
    /// walks when everything is mapped with 4KB pages (read off Fig 1a).
    pub walk_fraction_4k: f64,
    /// Fraction of walk latency hidden by out-of-order execution.
    pub overlap: f64,
    /// Whether the paper found ≥3% gain from 1GB over 2MB pages (the
    /// shaded set of Figures 1–2).
    pub giant_sensitive: bool,
    /// Fraction of each allocated chunk the application actually touches
    /// (slab allocators leave partially-filled slabs; B-tree nodes have
    /// slack). Untouched-but-promoted memory is the §7 "memory bloat":
    /// the paper measures +38GB for Memcached and +13GB for Btree under
    /// Trident.
    pub touch_fraction: f64,
    /// How many allocation steps the first touch trails behind: arena
    /// allocators reserve virtual memory ahead of use, so by the time a
    /// page faults its surroundings may already be 1GB-mappable. Zero
    /// means touch-after-each-allocation (Redis inserting keys); larger
    /// values let fault-time 1GB attempts happen for incremental
    /// allocators (SVM in Table 4 attempts — and mostly fails — 1GB
    /// allocation at fault time).
    pub alloc_touch_lag: u32,
}

impl WorkloadSpec {
    /// All twelve applications of Table 2, shaded (1GB-sensitive) first.
    #[must_use]
    pub fn all() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec {
                name: "XSBench",
                footprint_bytes: 117 * GIB,
                threads: 36,
                alloc: AllocPattern::Bulk,
                access: AccessPattern::Hotspot {
                    hot_fraction: 0.30,
                    hot_weight: 0.90,
                },
                stack_access_fraction: 0.0,
                stack_bytes: 8 * MIB,
                write_fraction: 0.05,
                walk_fraction_4k: 0.45,
                overlap: 0.72,
                giant_sensitive: true,
                touch_fraction: 1.0,
                alloc_touch_lag: 0,
            },
            WorkloadSpec {
                name: "GUPS",
                footprint_bytes: 32 * GIB,
                threads: 1,
                alloc: AllocPattern::Bulk,
                access: AccessPattern::UniformRandom,
                stack_access_fraction: 0.10,
                stack_bytes: 8 * MIB,
                write_fraction: 0.50,
                walk_fraction_4k: 0.55,
                overlap: 0.10,
                giant_sensitive: true,
                touch_fraction: 1.0,
                alloc_touch_lag: 0,
            },
            WorkloadSpec {
                name: "SVM",
                footprint_bytes: 68 * GIB,
                threads: 36,
                alloc: AllocPattern::IncrementalWithFragmentedTail {
                    chunk_bytes: 256 * MIB,
                    gap_chance: 0.03,
                    tail_fraction: 0.02,
                    tail_chunk_bytes: 128 * MIB,
                    tail_gap_chance: 0.9,
                },
                access: AccessPattern::HotspotWithTailSpike {
                    hot_fraction: 0.20,
                    hot_weight: 0.45,
                    spike_fraction: 0.02,
                    spike_weight: 0.40,
                },
                stack_access_fraction: 0.0,
                stack_bytes: 8 * MIB,
                write_fraction: 0.20,
                walk_fraction_4k: 0.38,
                overlap: 0.45,
                giant_sensitive: true,
                touch_fraction: 1.0,
                alloc_touch_lag: 8,
            },
            WorkloadSpec {
                name: "Redis",
                footprint_bytes: 44 * GIB,
                threads: 1,
                alloc: AllocPattern::Incremental {
                    chunk_bytes: 16 * MIB,
                    gap_chance: 0.004,
                },
                access: AccessPattern::Hotspot {
                    hot_fraction: 0.30,
                    hot_weight: 0.70,
                },
                stack_access_fraction: 0.12,
                stack_bytes: 8 * MIB,
                write_fraction: 0.30,
                walk_fraction_4k: 0.35,
                overlap: 0.55,
                giant_sensitive: true,
                touch_fraction: 0.95,
                alloc_touch_lag: 0,
            },
            WorkloadSpec {
                name: "Btree",
                footprint_bytes: 10 * GIB + 512 * MIB,
                threads: 1,
                alloc: AllocPattern::Incremental {
                    chunk_bytes: 4 * MIB,
                    gap_chance: 0.002,
                },
                access: AccessPattern::UniformRandom,
                stack_access_fraction: 0.0,
                stack_bytes: 8 * MIB,
                write_fraction: 0.05,
                walk_fraction_4k: 0.45,
                overlap: 0.45,
                giant_sensitive: true,
                touch_fraction: 0.55,
                alloc_touch_lag: 0,
            },
            WorkloadSpec {
                name: "Graph500",
                footprint_bytes: 63 * GIB + 512 * MIB,
                threads: 36,
                alloc: AllocPattern::IncrementalWithFragmentedTail {
                    chunk_bytes: GIB,
                    gap_chance: 0.15,
                    tail_fraction: 0.0126,
                    tail_chunk_bytes: 64 * MIB,
                    tail_gap_chance: 0.95,
                },
                access: AccessPattern::HotspotWithTailSpike {
                    hot_fraction: 0.15,
                    hot_weight: 0.40,
                    spike_fraction: 0.0126,
                    spike_weight: 0.45,
                },
                stack_access_fraction: 0.0,
                stack_bytes: 8 * MIB,
                write_fraction: 0.25,
                walk_fraction_4k: 0.40,
                overlap: 0.55,
                giant_sensitive: true,
                touch_fraction: 1.0,
                alloc_touch_lag: 2,
            },
            WorkloadSpec {
                name: "Memcached",
                // Table 2 lists 79GB but Tables 3-4 run a 137GB instance;
                // we follow the Trident-evaluation configuration.
                footprint_bytes: 137 * GIB,
                threads: 36,
                alloc: AllocPattern::Incremental {
                    chunk_bytes: 64 * MIB,
                    gap_chance: 0.01,
                },
                access: AccessPattern::Hotspot {
                    hot_fraction: 0.25,
                    hot_weight: 0.80,
                },
                stack_access_fraction: 0.02,
                stack_bytes: 8 * MIB,
                write_fraction: 0.30,
                walk_fraction_4k: 0.30,
                overlap: 0.50,
                giant_sensitive: true,
                touch_fraction: 0.72,
                alloc_touch_lag: 16,
            },
            WorkloadSpec {
                name: "Canneal",
                footprint_bytes: 32 * GIB,
                threads: 1,
                alloc: AllocPattern::Incremental {
                    chunk_bytes: 32 * MIB,
                    gap_chance: 0.005,
                },
                access: AccessPattern::Hotspot {
                    hot_fraction: 0.50,
                    hot_weight: 0.90,
                },
                stack_access_fraction: 0.0,
                stack_bytes: 8 * MIB,
                write_fraction: 0.15,
                walk_fraction_4k: 0.50,
                overlap: 0.20,
                giant_sensitive: true,
                touch_fraction: 1.0,
                alloc_touch_lag: 32,
            },
            // --- applications that gain little beyond 2MB pages ---
            WorkloadSpec {
                name: "CC",
                footprint_bytes: 72 * GIB,
                threads: 36,
                alloc: AllocPattern::Bulk,
                access: AccessPattern::Hotspot {
                    hot_fraction: 0.035,
                    hot_weight: 0.95,
                },
                stack_access_fraction: 0.0,
                stack_bytes: 8 * MIB,
                write_fraction: 0.20,
                walk_fraction_4k: 0.28,
                overlap: 0.50,
                giant_sensitive: false,
                touch_fraction: 1.0,
                alloc_touch_lag: 0,
            },
            WorkloadSpec {
                name: "BC",
                footprint_bytes: 72 * GIB,
                threads: 36,
                alloc: AllocPattern::Bulk,
                access: AccessPattern::Hotspot {
                    hot_fraction: 0.04,
                    hot_weight: 0.95,
                },
                stack_access_fraction: 0.0,
                stack_bytes: 8 * MIB,
                write_fraction: 0.20,
                walk_fraction_4k: 0.30,
                overlap: 0.50,
                giant_sensitive: false,
                touch_fraction: 1.0,
                alloc_touch_lag: 0,
            },
            WorkloadSpec {
                name: "PR",
                footprint_bytes: 72 * GIB,
                threads: 36,
                alloc: AllocPattern::Bulk,
                access: AccessPattern::Hotspot {
                    hot_fraction: 0.03,
                    hot_weight: 0.96,
                },
                stack_access_fraction: 0.0,
                stack_bytes: 8 * MIB,
                write_fraction: 0.15,
                walk_fraction_4k: 0.25,
                overlap: 0.55,
                giant_sensitive: false,
                touch_fraction: 1.0,
                alloc_touch_lag: 0,
            },
            WorkloadSpec {
                name: "CG.D",
                footprint_bytes: 50 * GIB,
                threads: 36,
                alloc: AllocPattern::Bulk,
                access: AccessPattern::Scan,
                stack_access_fraction: 0.0,
                stack_bytes: 8 * MIB,
                write_fraction: 0.20,
                walk_fraction_4k: 0.20,
                overlap: 0.60,
                giant_sensitive: false,
                touch_fraction: 1.0,
                alloc_touch_lag: 0,
            },
        ]
    }

    /// The eight shaded (1GB-sensitive) applications the evaluation
    /// focuses on from §5 onward.
    #[must_use]
    pub fn shaded() -> Vec<WorkloadSpec> {
        WorkloadSpec::all()
            .into_iter()
            .filter(|w| w.giant_sensitive)
            .collect()
    }

    /// Looks a workload up by name (case-insensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        WorkloadSpec::all()
            .into_iter()
            .find(|w| w.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_workloads_eight_shaded() {
        assert_eq!(WorkloadSpec::all().len(), 12);
        assert_eq!(WorkloadSpec::shaded().len(), 8);
    }

    #[test]
    fn shaded_set_matches_the_paper() {
        let names: Vec<&str> = WorkloadSpec::shaded().iter().map(|w| w.name).collect();
        for expected in [
            "XSBench",
            "GUPS",
            "SVM",
            "Redis",
            "Btree",
            "Graph500",
            "Memcached",
            "Canneal",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(WorkloadSpec::by_name("xsbench").is_some());
        assert!(WorkloadSpec::by_name("GUPS").is_some());
        assert!(WorkloadSpec::by_name("nope").is_none());
    }

    #[test]
    fn footprints_match_table2_within_rounding() {
        let gups = WorkloadSpec::by_name("GUPS").unwrap();
        assert_eq!(gups.footprint_bytes, 32 * GIB);
        let xs = WorkloadSpec::by_name("XSBench").unwrap();
        assert_eq!(xs.footprint_bytes / GIB, 117);
    }

    #[test]
    fn incremental_workloads_are_the_promotion_dependent_ones() {
        for w in WorkloadSpec::all() {
            let incremental = matches!(
                w.alloc,
                AllocPattern::Incremental { .. }
                    | AllocPattern::IncrementalWithFragmentedTail { .. }
            );
            match w.name {
                "Redis" | "Memcached" | "SVM" | "Btree" | "Canneal" | "Graph500" => {
                    assert!(incremental, "{} should allocate incrementally", w.name);
                }
                "XSBench" | "GUPS" => assert!(!incremental),
                _ => {}
            }
        }
    }

    #[test]
    fn scale_divides_footprints() {
        let s = MemoryScale::new(16);
        assert_eq!(s.apply(32 * GIB), 2 * GIB);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_is_rejected() {
        let _ = MemoryScale::new(0);
    }
}
