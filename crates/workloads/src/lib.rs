//! Models of the paper's twelve applications (Table 2).
//!
//! Each [`WorkloadSpec`] captures what actually drives the paper's
//! results for an application:
//!
//! * **footprint** — how much memory it touches (Table 2);
//! * **allocation pattern** — bulk up-front allocation (XSBench, GUPS)
//!   versus incremental allocation with virtual-address gaps (Redis,
//!   Memcached, SVM, Btree), which determines how much of the space is
//!   1GB-mappable (§4.3, Figure 3);
//! * **access locality** — hot-set size relative to the TLB reach of each
//!   page size, which determines whether 1GB pages pay off (§4.1): the
//!   eight shaded applications have hot sets beyond the 3GB reach of the
//!   2MB L2 TLB, the others do not;
//! * **stack sensitivity** — Redis and GUPS take many TLB misses on their
//!   stacks, which static hugetlbfs cannot back (§7);
//! * **calibration anchors** — the fraction of cycles spent in page walks
//!   under 4KB pages, read off Figure 1a.
//!
//! Workload parameters are expressed unscaled (as on the paper's 384GB
//! machine) and scaled down by a [`MemoryScale`] when a layout is built;
//! scaling the TLB by the same factor (see
//! `trident_tlb::TlbHierarchy::scaled_skylake`) preserves the
//! footprint-to-reach ratios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod access;
mod layout;
mod spec;

pub use access::{Access, AccessSampler};
pub use layout::{AllocPlan, AllocStep, ChunkRange, Layout};
pub use spec::{AccessPattern, AllocPattern, MemoryScale, WorkloadSpec};
