//! Sampling memory accesses according to a workload's locality model.

use rand::Rng;
use trident_types::Vpn;

use crate::{AccessPattern, Layout, WorkloadSpec};

/// One sampled memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Virtual page touched.
    pub vpn: Vpn,
    /// Whether it is a store.
    pub write: bool,
}

/// Draws memory accesses for a workload over a realized layout.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use trident_types::{AsId, PageGeometry};
/// use trident_vm::AddressSpace;
/// use trident_workloads::{AccessSampler, MemoryScale, WorkloadSpec};
///
/// let geo = PageGeometry::X86_64;
/// let mut space = AddressSpace::new(AsId::new(1), geo);
/// let spec = WorkloadSpec::by_name("GUPS").unwrap();
/// let mut rng = SmallRng::seed_from_u64(7);
/// let layout = spec.build_layout(&mut space, MemoryScale::new(64), &mut rng);
/// let mut sampler = AccessSampler::new(spec, layout);
/// let access = sampler.sample(&mut rng);
/// assert!(space.vma_containing(access.vpn).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct AccessSampler {
    spec: WorkloadSpec,
    layout: Layout,
    scan_cursor: u64,
}

impl AccessSampler {
    /// Creates a sampler for `spec` over `layout`.
    #[must_use]
    pub fn new(spec: WorkloadSpec, layout: Layout) -> AccessSampler {
        AccessSampler {
            spec,
            layout,
            scan_cursor: 0,
        }
    }

    /// The layout being sampled.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Draws one access.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Access {
        let write = rng.gen_bool(self.spec.write_fraction);
        if self.spec.stack_access_fraction > 0.0 && rng.gen_bool(self.spec.stack_access_fraction) {
            let offset = rng.gen_range(0..self.layout.stack.pages);
            return Access {
                vpn: self.layout.stack.start + offset,
                write,
            };
        }
        let index = match self.spec.access {
            AccessPattern::UniformRandom => rng.gen_range(0..self.layout.heap_pages),
            AccessPattern::Hotspot {
                hot_fraction,
                hot_weight,
            } => self.hotspot_index(rng, hot_fraction, hot_weight, false),
            AccessPattern::HotspotTail {
                hot_fraction,
                hot_weight,
            } => self.hotspot_index(rng, hot_fraction, hot_weight, true),
            AccessPattern::HotspotWithTailSpike {
                hot_fraction,
                hot_weight,
                spike_fraction,
                spike_weight,
            } => {
                let total = self.layout.heap_pages;
                let spike_pages = ((total as f64 * spike_fraction) as u64).max(1);
                let hot_pages = ((total as f64 * hot_fraction) as u64).max(1);
                let r: f64 = rng.gen();
                if r < spike_weight {
                    // The spike lives at the very end of the heap.
                    total - 1 - rng.gen_range(0..spike_pages)
                } else if r < spike_weight + hot_weight {
                    rng.gen_range(0..hot_pages)
                } else if hot_pages + spike_pages < total {
                    rng.gen_range(hot_pages..total - spike_pages)
                } else {
                    rng.gen_range(0..total)
                }
            }
            AccessPattern::Scan => {
                // Sequential with occasional random restarts; page-grained.
                if rng.gen_bool(0.001) {
                    self.scan_cursor = rng.gen_range(0..self.layout.heap_pages);
                }
                let index = self.scan_cursor;
                self.scan_cursor = (self.scan_cursor + 1) % self.layout.heap_pages;
                index
            }
        };
        Access {
            vpn: self.layout.heap_page(index),
            write,
        }
    }

    /// Draws one heap index under a hotspot distribution; `tail` places
    /// the hot subset at the end of the heap (the gap-fragmented part).
    fn hotspot_index<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        hot_fraction: f64,
        hot_weight: f64,
        tail: bool,
    ) -> u64 {
        let total = self.layout.heap_pages;
        let hot_pages = ((total as f64 * hot_fraction) as u64).max(1);
        let index = if rng.gen_bool(hot_weight) || hot_pages >= total {
            rng.gen_range(0..hot_pages)
        } else {
            rng.gen_range(hot_pages..total)
        };
        if tail {
            total - 1 - index
        } else {
            index
        }
    }

    /// Draws `n` accesses.
    pub fn sample_many<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<Access> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryScale;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use trident_types::{AsId, PageGeometry};
    use trident_vm::AddressSpace;

    fn sampler(name: &str) -> (AccessSampler, SmallRng) {
        let geo = PageGeometry::X86_64;
        let mut space = AddressSpace::new(AsId::new(1), geo);
        let spec = WorkloadSpec::by_name(name).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let layout = spec.build_layout(&mut space, MemoryScale::new(64), &mut rng);
        (AccessSampler::new(spec, layout), rng)
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let (mut s, mut rng) = sampler("XSBench");
        let hot_pages = (s.layout().heap_pages as f64 * 0.30) as u64;
        let hot_end = s.layout().heap_page(hot_pages - 1);
        let samples = s.sample_many(&mut rng, 5_000);
        let hot_hits = samples.iter().filter(|a| a.vpn <= hot_end).count();
        // ~90% should land in the hot region.
        assert!(hot_hits > 4_000, "only {hot_hits} hot hits");
    }

    #[test]
    fn gups_spreads_uniformly() {
        let (mut s, mut rng) = sampler("GUPS");
        let samples = s.sample_many(&mut rng, 8_000);
        // Split heap indices into quarters and check rough uniformity of
        // heap (non-stack) accesses.
        let q = s.layout().heap_pages / 4;
        let marks: Vec<Vpn> = (0..4).map(|i| s.layout().heap_page(i * q)).collect();
        let mut buckets = [0usize; 4];
        let stack_start = s.layout().stack.start;
        for a in &samples {
            if a.vpn >= stack_start {
                continue; // stack access
            }
            let b = marks.iter().rposition(|m| a.vpn >= *m).unwrap();
            buckets[b] += 1;
        }
        let heap_total: usize = buckets.iter().sum();
        for b in buckets {
            let share = b as f64 / heap_total as f64;
            assert!((0.18..0.32).contains(&share), "bucket share {share}");
        }
    }

    #[test]
    fn stack_fraction_is_respected() {
        let (mut s, mut rng) = sampler("GUPS"); // 10% stack accesses
        let samples = s.sample_many(&mut rng, 10_000);
        let stack_start = s.layout().stack.start;
        let stack_hits = samples.iter().filter(|a| a.vpn >= stack_start).count();
        assert!((700..1300).contains(&stack_hits), "{stack_hits}");
    }

    #[test]
    fn scan_is_mostly_sequential() {
        let (mut s, mut rng) = sampler("CG.D");
        let mut sequential = 0;
        let mut last = s.sample(&mut rng).vpn;
        for _ in 0..1000 {
            let a = s.sample(&mut rng).vpn;
            if a.raw() == last.raw() + 1 {
                sequential += 1;
            }
            last = a;
        }
        assert!(sequential > 900, "{sequential}");
    }

    #[test]
    fn writes_follow_the_write_fraction() {
        let (mut s, mut rng) = sampler("GUPS"); // 50% writes
        let samples = s.sample_many(&mut rng, 10_000);
        let writes = samples.iter().filter(|a| a.write).count();
        assert!((4_500..5_500).contains(&writes), "{writes}");
    }
}
