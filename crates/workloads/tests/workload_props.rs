//! Property tests over workload plans, layouts and samplers.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use trident_types::{AsId, PageGeometry};
use trident_vm::AddressSpace;
use trident_workloads::{AccessSampler, MemoryScale, WorkloadSpec};

fn any_workload() -> impl Strategy<Value = WorkloadSpec> {
    (0..WorkloadSpec::all().len()).prop_map(|i| WorkloadSpec::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A plan's heap steps sum exactly to the scaled footprint, and the
    /// realized layout agrees.
    #[test]
    fn plans_cover_the_scaled_footprint(spec in any_workload(), seed in any::<u64>()) {
        let geo = PageGeometry::X86_64;
        let scale = MemoryScale::new(128);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut space = AddressSpace::new(AsId::new(1), geo);
        let layout = spec.build_layout(&mut space, scale, &mut rng);
        let expected = geo.pages_for_bytes(scale.apply(spec.footprint_bytes)).max(1);
        prop_assert_eq!(layout.heap_pages, expected);
        let vma_total = space.total_vma_pages();
        prop_assert_eq!(vma_total, layout.heap_pages + layout.stack.pages);
    }

    /// Every sampled access lands inside an allocated VMA.
    #[test]
    fn samples_stay_in_bounds(spec in any_workload(), seed in any::<u64>()) {
        let geo = PageGeometry::X86_64;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut space = AddressSpace::new(AsId::new(1), geo);
        let layout = spec.build_layout(&mut space, MemoryScale::new(256), &mut rng);
        let mut sampler = AccessSampler::new(spec, layout);
        for _ in 0..500 {
            let access = sampler.sample(&mut rng);
            prop_assert!(
                space.vma_containing(access.vpn).is_some(),
                "{}: access {} outside every VMA",
                spec.name,
                access.vpn
            );
        }
    }

    /// Heap chunks never overlap and appear in ascending address order.
    #[test]
    fn heap_chunks_are_disjoint_and_ordered(spec in any_workload(), seed in any::<u64>()) {
        let geo = PageGeometry::X86_64;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut space = AddressSpace::new(AsId::new(1), geo);
        let layout = spec.build_layout(&mut space, MemoryScale::new(256), &mut rng);
        for pair in layout.heap.windows(2) {
            prop_assert!(pair[0].start.raw() + pair[0].pages <= pair[1].start.raw());
        }
    }
}
