//! A set-associative TLB structure with LRU replacement.

/// A set-associative translation cache over abstract tags.
///
/// Tags are page numbers in units of the page size the structure caches
/// (the caller shifts). A fully-associative structure is expressed as
/// `ways == entries`.
///
/// # Examples
///
/// ```
/// use trident_tlb::SetAssocTlb;
///
/// let mut tlb = SetAssocTlb::new(4, 4); // fully associative, 4 entries
/// assert!(!tlb.access(7));
/// assert!(tlb.access(7));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocTlb {
    sets: Vec<Vec<u64>>,
    ways: usize,
    hits: u64,
    misses: u64,
}

impl SetAssocTlb {
    /// Creates a TLB with `entries` total entries organized as `ways`-way
    /// sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> SetAssocTlb {
        assert!(ways > 0 && entries > 0, "TLB cannot be empty");
        assert_eq!(entries % ways, 0, "entries must be a multiple of ways");
        let set_count = entries / ways;
        SetAssocTlb {
            sets: vec![Vec::with_capacity(ways); set_count],
            ways,
            hits: 0,
            misses: 0,
        }
    }

    /// Total entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.sets.len() * self.ways
    }

    fn set_of(&self, tag: u64) -> usize {
        (tag % self.sets.len() as u64) as usize
    }

    /// Looks up `tag`; on a hit refreshes its LRU position, on a miss
    /// inserts it (evicting the LRU way if the set is full). Returns
    /// whether it hit.
    pub fn access(&mut self, tag: u64) -> bool {
        let ways = self.ways;
        let set_index = self.set_of(tag);
        let set = &mut self.sets[set_index];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Most-recently-used lives at the back.
            let t = set.remove(pos);
            set.push(t);
            self.hits += 1;
            true
        } else {
            if set.len() == ways {
                set.remove(0);
            }
            set.push(tag);
            self.misses += 1;
            false
        }
    }

    /// Inserts `tag` without counting a lookup (used for fill-on-L2-hit).
    pub fn fill(&mut self, tag: u64) {
        let ways = self.ways;
        let set_index = self.set_of(tag);
        let set = &mut self.sets[set_index];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.push(t);
            return;
        }
        if set.len() == ways {
            set.remove(0);
        }
        set.push(tag);
    }

    /// Whether `tag` is currently cached (no LRU update, no counting).
    #[must_use]
    pub fn probe(&self, tag: u64) -> bool {
        self.sets[self.set_of(tag)].contains(&tag)
    }

    /// Drops all entries (counters are preserved).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Lookup hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut t = SetAssocTlb::new(2, 2);
        t.access(1);
        t.access(2);
        t.access(1); // refresh 1; 2 becomes LRU
        t.access(3); // evicts 2
        assert!(t.probe(1));
        assert!(!t.probe(2));
        assert!(t.probe(3));
    }

    #[test]
    fn set_conflicts_evict_within_set_only() {
        // 4 entries, 2-way => 2 sets; even tags map to set 0.
        let mut t = SetAssocTlb::new(4, 2);
        t.access(0);
        t.access(2);
        t.access(4); // evicts 0 from set 0
        assert!(!t.probe(0));
        assert!(t.probe(2) && t.probe(4));
        t.access(1); // set 1 untouched by the above
        assert!(t.probe(1));
    }

    #[test]
    fn fill_does_not_count() {
        let mut t = SetAssocTlb::new(2, 2);
        t.fill(9);
        assert_eq!(t.hits() + t.misses(), 0);
        assert!(t.access(9));
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn flush_clears_contents_not_counters() {
        let mut t = SetAssocTlb::new(2, 2);
        t.access(5);
        t.flush();
        assert!(!t.probe(5));
        assert_eq!(t.misses(), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn rejects_ragged_geometry() {
        let _ = SetAssocTlb::new(5, 2);
    }
}
