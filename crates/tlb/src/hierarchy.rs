//! The two-level TLB hierarchy of the experimental platform.

use trident_types::{PageGeometry, PageSize, Vpn};

use crate::SetAssocTlb;

/// Where a translation was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbOutcome {
    /// Hit in the first-level TLB for the page's size.
    L1Hit,
    /// Missed L1, hit the second-level TLB.
    L2Hit,
    /// Missed both levels; a page walk is required.
    Miss,
}

/// The Skylake-like dTLB hierarchy of Table 1, generalized to any ladder.
///
/// Separate L1 structures per ladder rung (all probed in parallel by real
/// hardware; the paper notes the four 1GB entries are probed on *every*
/// load/store, which is part of 1GB pages' hardware cost), a unified L2
/// for every sub-top rung, and a separate small L2 for top-level (1GB
/// class) entries.
///
/// Group rungs — SVNAPOT pages, ARM contiguous-bit spans — are where the
/// TLB is the whole story: one coalesced entry covers the whole span, so
/// they get the reach of their size while their page walk still costs
/// what their underlying level costs. Their L1 structures default to the
/// entry counts of their level's natural rung, modeling coalesced entries
/// living in the same kind of structure.
///
/// # Examples
///
/// ```
/// use trident_tlb::{TlbHierarchy, TlbOutcome};
/// use trident_types::{PageSize, Vpn};
///
/// let mut tlb = TlbHierarchy::skylake();
/// let giant = PageSize::new(2);
/// assert_eq!(tlb.access(Vpn::new(0), giant), TlbOutcome::Miss);
/// assert_eq!(tlb.access(Vpn::new(1), giant), TlbOutcome::L1Hit);
/// ```
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    geo: PageGeometry,
    /// One L1 structure per ladder rung, indexed by [`PageSize::rung`].
    l1: Vec<SetAssocTlb>,
    /// Unified L2 serving every rung below the top table level.
    l2_shared: SetAssocTlb,
    /// Dedicated small L2 for top-level (giant-class) entries.
    l2_giant: SetAssocTlb,
    /// How many rungs the shared L2 serves (a prefix of the ladder, since
    /// levels never decrease going up); used to keep their tags disjoint.
    shared_rungs: u64,
}

/// Skylake Table 1 entry counts (entries, ways) for a rung at `level`,
/// `natural` or grouped.
fn skylake_l1(level: u8) -> (usize, usize) {
    match level {
        1 => (64, 4),
        2 => (32, 4),
        _ => (4, 4),
    }
}

impl TlbHierarchy {
    /// The hierarchy of the paper's Intel Xeon Gold 6140 (Skylake), with
    /// the real x86-64 page geometry:
    ///
    /// * L1d 4KB: 64 entries, 4-way
    /// * L1d 2MB: 32 entries, 4-way
    /// * L1d 1GB: 4 entries, fully associative
    /// * L2 4KB/2MB: 1536 entries, 12-way
    /// * L2 1GB: 16 entries, 4-way
    #[must_use]
    pub fn skylake() -> TlbHierarchy {
        TlbHierarchy::with_geometry(PageGeometry::X86_64)
    }

    /// The Skylake entry counts with a custom page geometry: every rung of
    /// the ladder gets an L1 sized by its table level, group rungs
    /// included.
    #[must_use]
    pub fn with_geometry(geo: PageGeometry) -> TlbHierarchy {
        let l1: Vec<(usize, usize)> = geo
            .rungs()
            .map(|size| skylake_l1(geo.level(size)))
            .collect();
        TlbHierarchy::custom(geo, &l1, (1536, 12), (16, 4))
    }

    /// The Skylake hierarchy with every structure's entry count divided by
    /// `divisor` (minimum one entry; associativity clamped accordingly).
    ///
    /// Experiments scale workload footprints down by a memory-scale factor
    /// to keep simulation tractable; scaling the TLB reach by the same
    /// factor preserves the footprint-to-reach ratios that determine when
    /// 1GB pages win (e.g. real XSBench: 117GB against 3GB of 2MB-reach
    /// and 16GB of 1GB-reach; at scale 16: 7.3GB against 192MB and 1GB —
    /// the same ratios).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn scaled_skylake(geo: PageGeometry, divisor: usize) -> TlbHierarchy {
        assert!(divisor > 0, "divisor must be positive");
        let scale = |(entries, ways): (usize, usize)| {
            let scaled = (entries / divisor).max(1);
            let ways = ways.min(scaled);
            // Round down to a multiple of the way count.
            ((scaled / ways) * ways, ways)
        };
        let l1: Vec<(usize, usize)> = geo
            .rungs()
            .map(|size| scale(skylake_l1(geo.level(size))))
            .collect();
        TlbHierarchy::custom(geo, &l1, scale((1536, 12)), scale((16, 4)))
    }

    /// Builds a custom hierarchy from per-rung L1 shapes (entry count,
    /// ways; one per ladder rung, bottom-up) plus the shared and giant L2
    /// shapes.
    ///
    /// # Panics
    ///
    /// Panics if `l1` does not provide exactly one shape per rung.
    #[must_use]
    pub fn custom(
        geo: PageGeometry,
        l1: &[(usize, usize)],
        l2_shared: (usize, usize),
        l2_giant: (usize, usize),
    ) -> TlbHierarchy {
        assert_eq!(l1.len(), geo.rung_count(), "one L1 shape per ladder rung");
        let shared_rungs = geo.rungs().filter(|&s| geo.level(s) < 3).count() as u64;
        TlbHierarchy {
            geo,
            l1: l1
                .iter()
                .map(|&(entries, ways)| SetAssocTlb::new(entries, ways))
                .collect(),
            l2_shared: SetAssocTlb::new(l2_shared.0, l2_shared.1),
            l2_giant: SetAssocTlb::new(l2_giant.0, l2_giant.1),
            shared_rungs,
        }
    }

    /// The page geometry used for tag formation.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.geo
    }

    /// Translation reach of the L2 structure serving `size`, in bytes —
    /// the quantity that explains when 1GB pages win: 1536×2MB = 3GB of
    /// reach versus 16×1GB = 16GB.
    #[must_use]
    pub fn l2_reach_bytes(&self, size: PageSize) -> u64 {
        let entries = if self.geo.level(size) < 3 {
            self.l2_shared.entries()
        } else {
            self.l2_giant.entries()
        };
        entries as u64 * self.geo.bytes(size)
    }

    fn tag(&self, vpn: Vpn, size: PageSize) -> u64 {
        vpn.raw() >> self.geo.order(size)
    }

    /// Simulates one translation of `vpn` cached at `size`. A group rung
    /// occupies one (coalesced) entry for its whole span — exactly the
    /// reach benefit NAPOT and contiguous bits exist to provide.
    pub fn access(&mut self, vpn: Vpn, size: PageSize) -> TlbOutcome {
        let tag = self.tag(vpn, size);
        if self.l1[size.rung()].access(tag) {
            return TlbOutcome::L1Hit;
        }
        let hit = if self.geo.level(size) < 3 {
            self.l2_shared.access(self.l2_tag(tag, size))
        } else {
            self.l2_giant.access(tag)
        };
        if hit {
            TlbOutcome::L2Hit
        } else {
            TlbOutcome::Miss
        }
    }

    /// The shared L2 holds entries of every sub-top rung; disambiguate
    /// tags by rung so entries of different sizes never alias. With two
    /// shared rungs (x86) this is the classic `tag << 1 | is_huge`
    /// encoding.
    fn l2_tag(&self, tag: u64, size: PageSize) -> u64 {
        tag * self.shared_rungs + size.rung() as u64
    }

    /// Drops all cached translations.
    pub fn flush(&mut self) {
        for l1 in &mut self.l1 {
            l1.flush();
        }
        self.l2_shared.flush();
        self.l2_giant.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_types::GIB;

    const BASE: PageSize = PageSize::BASE;
    const HUGE: PageSize = PageSize::new(1);
    const GIANT: PageSize = PageSize::new(2);

    #[test]
    fn same_giant_page_hits_after_first_access() {
        let mut t = TlbHierarchy::skylake();
        let giant_pages = PageGeometry::X86_64.base_pages(GIANT);
        assert_eq!(t.access(Vpn::new(0), GIANT), TlbOutcome::Miss);
        // Any page within the same giant page hits L1.
        assert_eq!(
            t.access(Vpn::new(giant_pages - 1), GIANT),
            TlbOutcome::L1Hit
        );
        // The next giant page misses.
        assert_eq!(t.access(Vpn::new(giant_pages), GIANT), TlbOutcome::Miss);
    }

    #[test]
    fn evicted_l1_entry_hits_l2() {
        let mut t = TlbHierarchy::skylake();
        let gp = PageGeometry::X86_64.base_pages(GIANT);
        // Touch 5 giant pages: more than the 4-entry L1 but within L2's 16.
        for i in 0..5 {
            assert_eq!(t.access(Vpn::new(i * gp), GIANT), TlbOutcome::Miss);
        }
        // Page 0 was evicted from the fully-associative L1, but is in L2.
        assert_eq!(t.access(Vpn::new(0), GIANT), TlbOutcome::L2Hit);
    }

    #[test]
    fn l2_reach_matches_paper_arithmetic() {
        let t = TlbHierarchy::skylake();
        assert_eq!(t.l2_reach_bytes(HUGE), 3 * GIB);
        assert_eq!(t.l2_reach_bytes(GIANT), 16 * GIB);
        assert_eq!(t.l2_reach_bytes(BASE), 1536 * 4096);
    }

    #[test]
    fn napot_rung_multiplies_reach_without_new_structures() {
        // Sv48's 64KB NAPOT rung: same shared L2, 16× the per-entry reach
        // of the base rung — the whole point of the encoding.
        let geo = PageGeometry::RISCV_SV48;
        let t = TlbHierarchy::with_geometry(geo);
        let napot = PageSize::new(1);
        assert!(geo.is_group(napot));
        assert_eq!(
            t.l2_reach_bytes(napot),
            16 * t.l2_reach_bytes(PageSize::BASE)
        );
    }

    #[test]
    fn group_rung_entries_coalesce_their_span() {
        let geo = PageGeometry::RISCV_SV48;
        let mut t = TlbHierarchy::with_geometry(geo);
        let napot = PageSize::new(1);
        let span = geo.base_pages(napot);
        assert_eq!(t.access(Vpn::new(0), napot), TlbOutcome::Miss);
        // Every page of the NAPOT span hits the one coalesced entry.
        for i in 1..span {
            assert_eq!(t.access(Vpn::new(i), napot), TlbOutcome::L1Hit);
        }
        assert_eq!(t.access(Vpn::new(span), napot), TlbOutcome::Miss);
    }

    #[test]
    fn scaled_hierarchy_preserves_reach_ratios() {
        let full = TlbHierarchy::skylake();
        let scaled = TlbHierarchy::scaled_skylake(PageGeometry::X86_64, 16);
        let ratio =
            |h: &TlbHierarchy| h.l2_reach_bytes(GIANT) as f64 / h.l2_reach_bytes(HUGE) as f64;
        // 16GB / 3GB ≈ 5.33 both before and after scaling.
        assert!((ratio(&full) - ratio(&scaled)).abs() < 0.5);
        assert_eq!(scaled.l2_reach_bytes(GIANT), GIB);
    }

    #[test]
    fn extreme_scaling_degenerates_to_single_entries() {
        let t = TlbHierarchy::scaled_skylake(PageGeometry::X86_64, 10_000);
        assert_eq!(t.l2_reach_bytes(GIANT), GIB);
        assert_eq!(t.l2_reach_bytes(BASE), 4096);
    }

    #[test]
    fn base_and_huge_tags_do_not_alias_in_shared_l2() {
        let mut t = TlbHierarchy::skylake();
        // Base page 0 and huge page 0 are different translations.
        t.access(Vpn::new(0), BASE);
        assert_eq!(t.access(Vpn::new(0), HUGE), TlbOutcome::Miss);
    }

    #[test]
    fn shared_rungs_do_not_alias_on_a_four_rung_ladder() {
        let geo = PageGeometry::RISCV_SV48;
        let mut t = TlbHierarchy::with_geometry(geo);
        // Page 0 cached at every shared rung: all distinct L2 entries.
        for size in geo.rungs().filter(|&s| geo.level(s) < 3) {
            t.access(Vpn::new(0), size);
        }
        for size in geo.rungs().filter(|&s| geo.level(s) < 3) {
            assert_ne!(t.access(Vpn::new(0), size), TlbOutcome::Miss);
        }
    }

    #[test]
    fn working_set_beyond_huge_reach_thrashes_but_fits_giant_reach() {
        // 8GB hot set: 4096 huge pages > 1536-entry L2, but 8 giant pages
        // fit the 16-entry giant L2. This is the crossover that makes the
        // shaded applications 1GB-sensitive.
        let geo = PageGeometry::X86_64;
        let mut t = TlbHierarchy::skylake();
        let hp = geo.base_pages(HUGE);
        let gp = geo.base_pages(GIANT);
        let hot_pages = 8 * 512; // 8GB in huge pages
                                 // Two passes with huge pages: second pass still misses a lot.
        let mut huge_misses = 0;
        for pass in 0..2 {
            for i in 0..hot_pages {
                let out = t.access(Vpn::new(i * hp), HUGE);
                if pass == 1 && out == TlbOutcome::Miss {
                    huge_misses += 1;
                }
            }
        }
        assert!(huge_misses > hot_pages / 2, "2MB reach should thrash");
        // Same footprint with giant pages: second pass all hits.
        let mut giant_misses = 0;
        for pass in 0..2 {
            for i in 0..8 {
                let out = t.access(Vpn::new(i * gp), GIANT);
                if pass == 1 && out != TlbOutcome::L1Hit && out != TlbOutcome::L2Hit {
                    giant_misses += 1;
                }
            }
        }
        assert_eq!(giant_misses, 0, "1GB reach should cover 8GB");
    }
}
