//! The two-level TLB hierarchy of the experimental platform.

use trident_types::{PageGeometry, PageSize, Vpn};

use crate::SetAssocTlb;

/// Where a translation was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbOutcome {
    /// Hit in the first-level TLB for the page's size.
    L1Hit,
    /// Missed L1, hit the second-level TLB.
    L2Hit,
    /// Missed both levels; a page walk is required.
    Miss,
}

/// The Skylake-like dTLB hierarchy of Table 1.
///
/// Separate L1 structures per page size (all probed in parallel by real
/// hardware; the paper notes the four 1GB entries are probed on *every*
/// load/store, which is part of 1GB pages' hardware cost), a unified L2 for
/// 4KB/2MB, and a separate small L2 for 1GB entries.
///
/// # Examples
///
/// ```
/// use trident_tlb::{TlbHierarchy, TlbOutcome};
/// use trident_types::{PageSize, Vpn};
///
/// let mut tlb = TlbHierarchy::skylake();
/// assert_eq!(tlb.access(Vpn::new(0), PageSize::Giant), TlbOutcome::Miss);
/// assert_eq!(tlb.access(Vpn::new(1), PageSize::Giant), TlbOutcome::L1Hit);
/// ```
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    geo: PageGeometry,
    l1_base: SetAssocTlb,
    l1_huge: SetAssocTlb,
    l1_giant: SetAssocTlb,
    l2_shared: SetAssocTlb,
    l2_giant: SetAssocTlb,
}

impl TlbHierarchy {
    /// The hierarchy of the paper's Intel Xeon Gold 6140 (Skylake), with
    /// the real x86-64 page geometry:
    ///
    /// * L1d 4KB: 64 entries, 4-way
    /// * L1d 2MB: 32 entries, 4-way
    /// * L1d 1GB: 4 entries, fully associative
    /// * L2 4KB/2MB: 1536 entries, 12-way
    /// * L2 1GB: 16 entries, 4-way
    #[must_use]
    pub fn skylake() -> TlbHierarchy {
        TlbHierarchy::with_geometry(PageGeometry::X86_64)
    }

    /// The Skylake entry counts with a custom page geometry (used by tests
    /// running on the miniature geometry).
    #[must_use]
    pub fn with_geometry(geo: PageGeometry) -> TlbHierarchy {
        TlbHierarchy {
            geo,
            l1_base: SetAssocTlb::new(64, 4),
            l1_huge: SetAssocTlb::new(32, 4),
            l1_giant: SetAssocTlb::new(4, 4),
            l2_shared: SetAssocTlb::new(1536, 12),
            l2_giant: SetAssocTlb::new(16, 4),
        }
    }

    /// The Skylake hierarchy with every structure's entry count divided by
    /// `divisor` (minimum one entry; associativity clamped accordingly).
    ///
    /// Experiments scale workload footprints down by a memory-scale factor
    /// to keep simulation tractable; scaling the TLB reach by the same
    /// factor preserves the footprint-to-reach ratios that determine when
    /// 1GB pages win (e.g. real XSBench: 117GB against 3GB of 2MB-reach
    /// and 16GB of 1GB-reach; at scale 16: 7.3GB against 192MB and 1GB —
    /// the same ratios).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn scaled_skylake(geo: PageGeometry, divisor: usize) -> TlbHierarchy {
        assert!(divisor > 0, "divisor must be positive");
        let scale = |entries: usize, ways: usize| {
            let scaled = (entries / divisor).max(1);
            let ways = ways.min(scaled);
            // Round down to a multiple of the way count.
            ((scaled / ways) * ways, ways)
        };
        TlbHierarchy::custom(
            geo,
            scale(64, 4),
            scale(32, 4),
            scale(4, 4),
            scale(1536, 12),
            scale(16, 4),
        )
    }

    /// Builds a custom hierarchy (entry count, ways) per structure, in the
    /// order: L1 4KB, L1 2MB, L1 1GB, L2 shared, L2 1GB.
    #[must_use]
    pub fn custom(
        geo: PageGeometry,
        l1_base: (usize, usize),
        l1_huge: (usize, usize),
        l1_giant: (usize, usize),
        l2_shared: (usize, usize),
        l2_giant: (usize, usize),
    ) -> TlbHierarchy {
        TlbHierarchy {
            geo,
            l1_base: SetAssocTlb::new(l1_base.0, l1_base.1),
            l1_huge: SetAssocTlb::new(l1_huge.0, l1_huge.1),
            l1_giant: SetAssocTlb::new(l1_giant.0, l1_giant.1),
            l2_shared: SetAssocTlb::new(l2_shared.0, l2_shared.1),
            l2_giant: SetAssocTlb::new(l2_giant.0, l2_giant.1),
        }
    }

    /// The page geometry used for tag formation.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.geo
    }

    /// Translation reach of the L2 structure serving `size`, in bytes —
    /// the quantity that explains when 1GB pages win: 1536×2MB = 3GB of
    /// reach versus 16×1GB = 16GB.
    #[must_use]
    pub fn l2_reach_bytes(&self, size: PageSize) -> u64 {
        let entries = match size {
            PageSize::Base | PageSize::Huge => self.l2_shared.entries(),
            PageSize::Giant => self.l2_giant.entries(),
        };
        entries as u64 * self.geo.bytes(size)
    }

    fn tag(&self, vpn: Vpn, size: PageSize) -> u64 {
        vpn.raw() >> self.geo.order(size)
    }

    /// Simulates one translation of `vpn` cached at `size`.
    pub fn access(&mut self, vpn: Vpn, size: PageSize) -> TlbOutcome {
        let tag = self.tag(vpn, size);
        let l1 = match size {
            PageSize::Base => &mut self.l1_base,
            PageSize::Huge => &mut self.l1_huge,
            PageSize::Giant => &mut self.l1_giant,
        };
        if l1.access(tag) {
            return TlbOutcome::L1Hit;
        }
        let l2 = match size {
            PageSize::Base | PageSize::Huge => &mut self.l2_shared,
            PageSize::Giant => &mut self.l2_giant,
        };
        if l2.access(l2_tag(tag, size)) {
            TlbOutcome::L2Hit
        } else {
            TlbOutcome::Miss
        }
    }

    /// Drops all cached translations.
    pub fn flush(&mut self) {
        self.l1_base.flush();
        self.l1_huge.flush();
        self.l1_giant.flush();
        self.l2_shared.flush();
        self.l2_giant.flush();
    }
}

/// The shared L2 holds both 4KB and 2MB entries; disambiguate tags by size
/// so a 4KB entry never aliases a 2MB one.
fn l2_tag(tag: u64, size: PageSize) -> u64 {
    match size {
        PageSize::Base => tag << 1,
        PageSize::Huge => (tag << 1) | 1,
        PageSize::Giant => tag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_types::GIB;

    #[test]
    fn same_giant_page_hits_after_first_access() {
        let mut t = TlbHierarchy::skylake();
        let giant_pages = PageGeometry::X86_64.base_pages(PageSize::Giant);
        assert_eq!(t.access(Vpn::new(0), PageSize::Giant), TlbOutcome::Miss);
        // Any page within the same giant page hits L1.
        assert_eq!(
            t.access(Vpn::new(giant_pages - 1), PageSize::Giant),
            TlbOutcome::L1Hit
        );
        // The next giant page misses.
        assert_eq!(
            t.access(Vpn::new(giant_pages), PageSize::Giant),
            TlbOutcome::Miss
        );
    }

    #[test]
    fn evicted_l1_entry_hits_l2() {
        let mut t = TlbHierarchy::skylake();
        let gp = PageGeometry::X86_64.base_pages(PageSize::Giant);
        // Touch 5 giant pages: more than the 4-entry L1 but within L2's 16.
        for i in 0..5 {
            assert_eq!(
                t.access(Vpn::new(i * gp), PageSize::Giant),
                TlbOutcome::Miss
            );
        }
        // Page 0 was evicted from the fully-associative L1, but is in L2.
        assert_eq!(t.access(Vpn::new(0), PageSize::Giant), TlbOutcome::L2Hit);
    }

    #[test]
    fn l2_reach_matches_paper_arithmetic() {
        let t = TlbHierarchy::skylake();
        assert_eq!(t.l2_reach_bytes(PageSize::Huge), 3 * GIB);
        assert_eq!(t.l2_reach_bytes(PageSize::Giant), 16 * GIB);
        assert_eq!(t.l2_reach_bytes(PageSize::Base), 1536 * 4096);
    }

    #[test]
    fn scaled_hierarchy_preserves_reach_ratios() {
        let full = TlbHierarchy::skylake();
        let scaled = TlbHierarchy::scaled_skylake(PageGeometry::X86_64, 16);
        let ratio = |h: &TlbHierarchy| {
            h.l2_reach_bytes(PageSize::Giant) as f64 / h.l2_reach_bytes(PageSize::Huge) as f64
        };
        // 16GB / 3GB ≈ 5.33 both before and after scaling.
        assert!((ratio(&full) - ratio(&scaled)).abs() < 0.5);
        assert_eq!(scaled.l2_reach_bytes(PageSize::Giant), GIB);
    }

    #[test]
    fn extreme_scaling_degenerates_to_single_entries() {
        let t = TlbHierarchy::scaled_skylake(PageGeometry::X86_64, 10_000);
        assert_eq!(t.l2_reach_bytes(PageSize::Giant), GIB);
        assert_eq!(t.l2_reach_bytes(PageSize::Base), 4096);
    }

    #[test]
    fn base_and_huge_tags_do_not_alias_in_shared_l2() {
        let mut t = TlbHierarchy::skylake();
        // Base page 0 and huge page 0 are different translations.
        t.access(Vpn::new(0), PageSize::Base);
        assert_eq!(t.access(Vpn::new(0), PageSize::Huge), TlbOutcome::Miss);
    }

    #[test]
    fn working_set_beyond_huge_reach_thrashes_but_fits_giant_reach() {
        // 8GB hot set: 4096 huge pages > 1536-entry L2, but 8 giant pages
        // fit the 16-entry giant L2. This is the crossover that makes the
        // shaded applications 1GB-sensitive.
        let geo = PageGeometry::X86_64;
        let mut t = TlbHierarchy::skylake();
        let hp = geo.base_pages(PageSize::Huge);
        let gp = geo.base_pages(PageSize::Giant);
        let hot_pages = 8 * 512; // 8GB in huge pages
                                 // Two passes with huge pages: second pass still misses a lot.
        let mut huge_misses = 0;
        for pass in 0..2 {
            for i in 0..hot_pages {
                let out = t.access(Vpn::new(i * hp), PageSize::Huge);
                if pass == 1 && out == TlbOutcome::Miss {
                    huge_misses += 1;
                }
            }
        }
        assert!(huge_misses > hot_pages / 2, "2MB reach should thrash");
        // Same footprint with giant pages: second pass all hits.
        let mut giant_misses = 0;
        for pass in 0..2 {
            for i in 0..8 {
                let out = t.access(Vpn::new(i * gp), PageSize::Giant);
                if pass == 1 && out != TlbOutcome::L1Hit && out != TlbOutcome::L2Hit {
                    giant_misses += 1;
                }
            }
        }
        assert_eq!(giant_misses, 0, "1GB reach should cover 8GB");
    }
}
