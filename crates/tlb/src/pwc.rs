//! Page-walk caches (PWC).
//!
//! Real walkers don't pay a full memory access per page-table level: MMU
//! caches hold recently-used upper-level entries (PML4/PDPT/PD), so most
//! walks resolve the top levels without touching memory. The paper's
//! related work covers these structures ([16, 22] — Barr et al.,
//! Bhattacharjee); we model a small cache per non-leaf level so the walk
//! cost becomes `1 + (levels that missed the PWC)` memory accesses.
//!
//! This refines the flat [`WalkCostModel`](crate::WalkCostModel): large
//! pages keep their advantage (fewer levels to cache, and the leaf access
//! is never cached), but the absolute walk costs compress — which is why
//! TLB-miss *frequency*, not individual walk latency, dominates the
//! paper's results.

use trident_types::{PageGeometry, PageSize, Vpn};

use crate::SetAssocTlb;

/// A page-walk cache: one small structure per upper page-table level.
///
/// # Examples
///
/// ```
/// use trident_tlb::PageWalkCache;
/// use trident_types::{PageGeometry, PageSize, Vpn};
///
/// let mut pwc = PageWalkCache::skylake(PageGeometry::X86_64);
/// let cold = pwc.walk_accesses(Vpn::new(0), PageSize::BASE);
/// let warm = pwc.walk_accesses(Vpn::new(1), PageSize::BASE);
/// assert_eq!(cold, 4); // every level missed
/// assert_eq!(warm, 1); // upper levels cached; only the PTE is fetched
/// ```
#[derive(Debug, Clone)]
pub struct PageWalkCache {
    geo: PageGeometry,
    /// PML4-entry cache (covers 512GB per entry on real hardware).
    pml4: SetAssocTlb,
    /// PDPT-entry cache (1GB per entry).
    pdpt: SetAssocTlb,
    /// PD-entry cache (2MB per entry).
    pd: SetAssocTlb,
}

impl PageWalkCache {
    /// Skylake-like sizing: a handful of entries per level.
    #[must_use]
    pub fn skylake(geo: PageGeometry) -> PageWalkCache {
        PageWalkCache {
            geo,
            pml4: SetAssocTlb::new(2, 2),
            pdpt: SetAssocTlb::new(4, 4),
            pd: SetAssocTlb::new(16, 4),
        }
    }

    /// Memory accesses for one walk of a page of `size`, consulting and
    /// filling the per-level caches. The leaf entry is always fetched.
    pub fn walk_accesses(&mut self, vpn: Vpn, size: PageSize) -> u64 {
        let level3_span = 1u64 << self.geo.level_order(3);
        let level2_span = 1u64 << self.geo.level_order(2);
        // Tags per level: which upper-level entry covers this page.
        let pml4_tag = vpn.raw() / (level3_span * 512);
        let pdpt_tag = vpn.raw() / level3_span;
        let pd_tag = vpn.raw() / level2_span;
        // Group rungs (NAPOT / contiguous spans) walk at their underlying
        // table level, so `geo.level` is exactly the leaf level here.
        let leaf_level = self.geo.level(size);
        let mut accesses = 1; // the leaf entry itself
        if !self.pml4.access(pml4_tag) {
            accesses += 1;
        }
        if leaf_level < 3 && !self.pdpt.access(pdpt_tag) {
            accesses += 1;
        }
        if leaf_level < 2 && !self.pd.access(pd_tag) {
            accesses += 1;
        }
        accesses
    }

    /// Drops all cached entries.
    pub fn flush(&mut self) {
        self.pml4.flush();
        self.pdpt.flush();
        self.pd.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pwc() -> PageWalkCache {
        PageWalkCache::skylake(PageGeometry::X86_64)
    }

    #[test]
    fn cold_walks_match_the_flat_model() {
        let mut p = pwc();
        assert_eq!(p.walk_accesses(Vpn::new(0), PageSize::BASE), 4);
        p.flush();
        assert_eq!(p.walk_accesses(Vpn::new(0), PageSize::new(1)), 3);
        p.flush();
        assert_eq!(p.walk_accesses(Vpn::new(0), PageSize::new(2)), 2);
    }

    #[test]
    fn locality_compresses_base_walks_to_one_access() {
        let mut p = pwc();
        p.walk_accesses(Vpn::new(0), PageSize::BASE);
        // Same 2MB region: all upper levels hit.
        assert_eq!(p.walk_accesses(Vpn::new(100), PageSize::BASE), 1);
    }

    #[test]
    fn giant_strided_walks_still_benefit_from_pml4() {
        let geo = PageGeometry::X86_64;
        let mut p = pwc();
        let gp = geo.base_pages(PageSize::new(2));
        p.walk_accesses(Vpn::new(0), PageSize::new(2));
        // A different giant page under the same PML4 entry: 1 access.
        assert_eq!(p.walk_accesses(Vpn::new(gp * 3), PageSize::new(2)), 1);
    }

    #[test]
    fn pd_cache_thrashes_beyond_its_reach() {
        let geo = PageGeometry::X86_64;
        let mut p = pwc();
        let hp = geo.base_pages(PageSize::new(1));
        // Touch 64 distinct 2MB regions (PD cache holds 16): round two
        // still misses the PD level.
        for round in 0..2 {
            for i in 0..64u64 {
                let a = p.walk_accesses(Vpn::new(i * hp), PageSize::BASE);
                if round == 1 {
                    assert!(a >= 2, "PD entry should have been evicted");
                }
            }
        }
    }
}
