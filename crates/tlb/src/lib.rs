//! TLB and page-walk cost model for the Trident simulator.
//!
//! Models the data-side translation hardware of the paper's Skylake testbed
//! (Table 1):
//!
//! | structure | 4KB | 2MB | 1GB |
//! |---|---|---|---|
//! | L1 dTLB | 64 entries, 4-way | 32 entries, 4-way | 4 entries, fully assoc. |
//! | L2 sTLB | 1536 entries, 12-way (shared with 2MB) | shared | 16 entries, 4-way |
//!
//! Walk costs follow §2: a native walk needs up to 4 / 3 / 2 memory
//! accesses for 4KB / 2MB / 1GB pages; a nested (virtualized) walk needs up
//! to 24 / 15 / 8 when both levels use the same page size — the general
//! formula is `(g+1)·(h+1) − 1` for `g` guest and `h` host levels.
//!
//! # Examples
//!
//! ```
//! use trident_tlb::{TlbHierarchy, TranslationEngine, WalkCostModel};
//! use trident_types::{PageSize, Vpn};
//!
//! let mut engine = TranslationEngine::new(TlbHierarchy::skylake(), WalkCostModel::default());
//! let first = engine.translate(Vpn::new(42), PageSize::BASE);
//! let second = engine.translate(Vpn::new(42), PageSize::BASE);
//! assert!(first.cycles > second.cycles); // the second access hits the TLB
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod hierarchy;
mod pwc;
mod set_assoc;
mod stats;
mod walk;

pub use hierarchy::{TlbHierarchy, TlbOutcome};
pub use pwc::PageWalkCache;
pub use set_assoc::SetAssocTlb;
pub use stats::{SizeStats, TranslationStats};
pub use walk::{
    nested_walk_accesses, nested_walk_accesses_at, walk_accesses, walk_accesses_at, PageTableDepth,
    WalkCostModel,
};

use trident_obs::{Event, Recorder};
use trident_types::{PageSize, Vpn};

/// Outcome of one simulated address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Where the translation was found.
    pub outcome: TlbOutcome,
    /// Cycles charged to this translation (0 for an L1 hit).
    pub cycles: u64,
}

/// Drives a [`TlbHierarchy`] with a [`WalkCostModel`] and accumulates
/// [`TranslationStats`] — the simulator's stand-in for the
/// `DTLB_*_MISSES.WALK_ACTIVE` performance counters used in §3.
#[derive(Debug, Clone)]
pub struct TranslationEngine {
    hierarchy: TlbHierarchy,
    cost: WalkCostModel,
    stats: TranslationStats,
    /// When set, misses are charged the nested walk cost with this host
    /// page size.
    nested_host_size: Option<PageSize>,
}

impl TranslationEngine {
    /// Creates an engine for native execution.
    #[must_use]
    pub fn new(hierarchy: TlbHierarchy, cost: WalkCostModel) -> TranslationEngine {
        TranslationEngine {
            hierarchy,
            cost,
            stats: TranslationStats::default(),
            nested_host_size: None,
        }
    }

    /// Creates an engine for virtualized execution: TLB entries cache
    /// gVA→hPA at the *smaller* of the guest and host page sizes, and
    /// misses pay the two-dimensional walk.
    #[must_use]
    pub fn new_virtualized(
        hierarchy: TlbHierarchy,
        cost: WalkCostModel,
        host_size: PageSize,
    ) -> TranslationEngine {
        TranslationEngine {
            hierarchy,
            cost,
            stats: TranslationStats::default(),
            nested_host_size: Some(host_size),
        }
    }

    trident_obs::noop_variant! {
        /// Translates one access to `vpn`, mapped by a leaf of `guest_size`.
        /// Returns the outcome and accumulates statistics.
        pub fn translate => translate_rec(&mut self, vpn: Vpn, guest_size: PageSize) -> AccessResult;
    }

    /// [`translate`](Self::translate), reporting each full miss to `rec` as
    /// an [`Event::TlbMiss`] carrying the walk cost.
    pub fn translate_rec<R: Recorder>(
        &mut self,
        vpn: Vpn,
        guest_size: PageSize,
        rec: &mut R,
    ) -> AccessResult {
        let effective = match self.nested_host_size {
            Some(host) => guest_size.min(host),
            None => guest_size,
        };
        let outcome = self.hierarchy.access(vpn, effective);
        let cycles = match outcome {
            TlbOutcome::L1Hit => 0,
            TlbOutcome::L2Hit => self.cost.l2_hit_cycles,
            TlbOutcome::Miss => match self.nested_host_size {
                Some(host) => {
                    self.cost
                        .nested_walk_cycles(&self.hierarchy.geometry(), guest_size, host)
                }
                None => self
                    .cost
                    .walk_cycles(&self.hierarchy.geometry(), guest_size),
            },
        };
        if outcome == TlbOutcome::Miss && rec.enabled() {
            rec.record(Event::TlbMiss {
                size: effective,
                walk_cycles: cycles,
            });
        }
        self.stats.record(effective, outcome, cycles);
        AccessResult { outcome, cycles }
    }

    trident_obs::noop_variant! {
        /// Translates one virtualized access where the host-level page size is
        /// known per access (the host may back different gPA ranges with
        /// different sizes). The TLB caches gVA→hPA at the smaller of the two
        /// sizes; a miss pays the two-dimensional walk for the actual pair.
        pub fn translate_nested => translate_nested_rec(
            &mut self,
            vpn: Vpn,
            guest_size: PageSize,
            host_size: PageSize,
        ) -> AccessResult;
    }

    /// [`translate_nested`](Self::translate_nested), reporting each full
    /// miss to `rec` as an [`Event::TlbMiss`].
    pub fn translate_nested_rec<R: Recorder>(
        &mut self,
        vpn: Vpn,
        guest_size: PageSize,
        host_size: PageSize,
        rec: &mut R,
    ) -> AccessResult {
        let effective = guest_size.min(host_size);
        let outcome = self.hierarchy.access(vpn, effective);
        let cycles = match outcome {
            TlbOutcome::L1Hit => 0,
            TlbOutcome::L2Hit => self.cost.l2_hit_cycles,
            TlbOutcome::Miss => {
                self.cost
                    .nested_walk_cycles(&self.hierarchy.geometry(), guest_size, host_size)
            }
        };
        if outcome == TlbOutcome::Miss && rec.enabled() {
            rec.record(Event::TlbMiss {
                size: effective,
                walk_cycles: cycles,
            });
        }
        self.stats.record(effective, outcome, cycles);
        AccessResult { outcome, cycles }
    }

    /// Invalidates all cached translations (e.g. after promotion remaps).
    pub fn flush(&mut self) {
        self.hierarchy.flush();
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TranslationStats {
        &self.stats
    }

    /// Resets statistics (but not TLB contents), e.g. after a warm-up
    /// phase.
    pub fn reset_stats(&mut self) {
        self.stats = TranslationStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_obs::RingTracer;

    #[test]
    fn translate_rec_reports_each_walk_with_its_cost() {
        let mut engine = TranslationEngine::new(TlbHierarchy::skylake(), WalkCostModel::default());
        let mut tracer = RingTracer::new(16);
        // Cold access misses; the immediate repeat hits L1 and is silent.
        let miss = engine.translate_rec(Vpn::new(7), PageSize::BASE, &mut tracer);
        engine.translate_rec(Vpn::new(7), PageSize::BASE, &mut tracer);
        assert_eq!(miss.outcome, TlbOutcome::Miss);
        let events: Vec<&Event> = tracer.events().collect();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0],
            &Event::TlbMiss {
                size: PageSize::BASE,
                walk_cycles: miss.cycles,
            }
        );
        assert_eq!(engine.stats().total_walks(), 1);
    }

    #[test]
    fn translate_nested_rec_charges_the_two_dimensional_walk() {
        let mut engine = TranslationEngine::new(TlbHierarchy::skylake(), WalkCostModel::default());
        let mut tracer = RingTracer::new(4);
        let r =
            engine.translate_nested_rec(Vpn::new(0), PageSize::new(1), PageSize::BASE, &mut tracer);
        assert_eq!(r.outcome, TlbOutcome::Miss);
        // Nested walk at (2MB, 4KB): (3+1)*(4+1)-1 = 19 accesses.
        assert_eq!(r.cycles, 19 * WalkCostModel::default().mem_access_cycles);
        assert_eq!(
            tracer.events().next(),
            Some(&Event::TlbMiss {
                size: PageSize::BASE,
                walk_cycles: r.cycles,
            })
        );
    }
}
