//! Page-walk cost model.

use trident_types::PageSize;

/// Page-table depth configuration. §2 notes that newer processors need up
/// to five levels ("five memory accesses due to deeper page table
/// structures" — ref. \[25\] of the paper), and §4.3 argues the advent of denser NVM plus
/// five-level tables makes low-overhead translation more urgent than ever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageTableDepth {
    /// Classic x86-64 four-level tables (48-bit VA).
    #[default]
    FourLevel,
    /// LA57 five-level tables (57-bit VA).
    FiveLevel,
}

/// Page-table levels that must be traversed to translate a page of `size`
/// on x86-64 with four-level tables: 4 for 4KB, 3 for 2MB (PMD leaf), 2 for
/// 1GB (PUD leaf). Each level is one memory access (§2).
#[must_use]
pub fn walk_accesses(size: PageSize) -> u64 {
    walk_accesses_at(size, PageTableDepth::FourLevel)
}

/// Walk accesses with an explicit page-table depth; five-level tables add
/// one access to every size.
#[must_use]
pub fn walk_accesses_at(size: PageSize, depth: PageTableDepth) -> u64 {
    let extra = match depth {
        PageTableDepth::FourLevel => 0,
        PageTableDepth::FiveLevel => 1,
    };
    extra
        + match size {
            PageSize::Base => 4,
            PageSize::Huge => 3,
            PageSize::Giant => 2,
        }
}

/// Memory accesses for a two-dimensional (nested) walk with `guest` and
/// `host` page sizes: `(g + 1) · (h + 1) − 1` where `g`/`h` are the level
/// counts. Reproduces §2's numbers: 24 for 4KB+4KB, 15 for 2MB+2MB, 8 for
/// 1GB+1GB.
#[must_use]
pub fn nested_walk_accesses(guest: PageSize, host: PageSize) -> u64 {
    nested_walk_accesses_at(guest, host, PageTableDepth::FourLevel)
}

/// Nested walk accesses with an explicit page-table depth at both levels:
/// with five-level tables a 4KB+4KB miss needs up to 35 memory accesses,
/// making large pages even more valuable.
#[must_use]
pub fn nested_walk_accesses_at(guest: PageSize, host: PageSize, depth: PageTableDepth) -> u64 {
    let g = walk_accesses_at(guest, depth);
    let h = walk_accesses_at(host, depth);
    (g + 1) * (h + 1) - 1
}

/// Converts walk memory accesses into cycles.
///
/// The absolute scale is a model constant (we have no Xeon to calibrate
/// against); what the experiments depend on is the *ratio* between page
/// sizes, which comes from the access counts above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkCostModel {
    /// Cycles per page-walk memory access (a blend of cache and DRAM
    /// latencies; page-walk caches are folded into this constant).
    pub mem_access_cycles: u64,
    /// Cycles for an L2 TLB hit.
    pub l2_hit_cycles: u64,
}

impl WalkCostModel {
    /// Cycles for a native walk of a page of `size`.
    #[must_use]
    pub fn walk_cycles(&self, size: PageSize) -> u64 {
        walk_accesses(size) * self.mem_access_cycles
    }

    /// Cycles for a nested walk.
    #[must_use]
    pub fn nested_walk_cycles(&self, guest: PageSize, host: PageSize) -> u64 {
        nested_walk_accesses(guest, host) * self.mem_access_cycles
    }
}

impl Default for WalkCostModel {
    fn default() -> Self {
        WalkCostModel {
            mem_access_cycles: 50,
            l2_hit_cycles: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_walk_accesses_match_paper() {
        assert_eq!(walk_accesses(PageSize::Base), 4);
        assert_eq!(walk_accesses(PageSize::Huge), 3);
        assert_eq!(walk_accesses(PageSize::Giant), 2);
    }

    #[test]
    fn nested_walk_accesses_match_paper() {
        assert_eq!(nested_walk_accesses(PageSize::Base, PageSize::Base), 24);
        assert_eq!(nested_walk_accesses(PageSize::Huge, PageSize::Huge), 15);
        assert_eq!(nested_walk_accesses(PageSize::Giant, PageSize::Giant), 8);
    }

    #[test]
    fn mixed_nested_sizes_are_between_the_extremes() {
        let mixed = nested_walk_accesses(PageSize::Giant, PageSize::Base);
        assert!(mixed > 8 && mixed < 24);
        assert_eq!(mixed, nested_walk_accesses(PageSize::Base, PageSize::Giant));
    }

    #[test]
    fn five_level_tables_add_one_access_per_size() {
        for size in [PageSize::Base, PageSize::Huge, PageSize::Giant] {
            assert_eq!(
                walk_accesses_at(size, PageTableDepth::FiveLevel),
                walk_accesses(size) + 1
            );
        }
        // 4KB+4KB nested under LA57: (5+1)*(5+1)-1 = 35 accesses.
        assert_eq!(
            nested_walk_accesses_at(PageSize::Base, PageSize::Base, PageTableDepth::FiveLevel),
            35
        );
        assert_eq!(
            nested_walk_accesses_at(PageSize::Giant, PageSize::Giant, PageTableDepth::FiveLevel),
            15
        );
    }

    #[test]
    fn cycles_scale_with_the_model_constant() {
        let m = WalkCostModel {
            mem_access_cycles: 10,
            l2_hit_cycles: 7,
        };
        assert_eq!(m.walk_cycles(PageSize::Base), 40);
        assert_eq!(m.nested_walk_cycles(PageSize::Giant, PageSize::Giant), 80);
    }
}
