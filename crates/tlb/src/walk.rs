//! Page-walk cost model.

use trident_types::{PageGeometry, PageSize};

/// Page-table depth configuration. §2 notes that newer processors need up
/// to five levels ("five memory accesses due to deeper page table
/// structures" — ref. \[25\] of the paper), and §4.3 argues the advent of denser NVM plus
/// five-level tables makes low-overhead translation more urgent than ever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageTableDepth {
    /// Classic x86-64 four-level tables (48-bit VA).
    #[default]
    FourLevel,
    /// LA57 five-level tables (57-bit VA).
    FiveLevel,
}

/// Page-table levels that must be traversed to translate a page of `size`
/// under four-level tables: `levels + 1 − leaf_level` memory accesses, so
/// on x86-64 that is 4 for 4KB (PTE leaf), 3 for 2MB (PMD leaf), 2 for
/// 1GB (PUD leaf). Each level is one memory access (§2).
///
/// Group rungs — RISC-V NAPOT pages, ARM contiguous-PTE spans — leave the
/// table shape untouched, so they pay the *full* walk depth of their
/// underlying level: a 64KB NAPOT page still walks like a 4KB one. Their
/// benefit is TLB reach, never walk latency.
#[must_use]
pub fn walk_accesses(geo: &PageGeometry, size: PageSize) -> u64 {
    walk_accesses_at(geo, size, PageTableDepth::FourLevel)
}

/// Walk accesses with an explicit page-table depth; five-level tables add
/// one access to every size.
#[must_use]
pub fn walk_accesses_at(geo: &PageGeometry, size: PageSize, depth: PageTableDepth) -> u64 {
    let extra = match depth {
        PageTableDepth::FourLevel => 0,
        PageTableDepth::FiveLevel => 1,
    };
    // Three modeled table levels (PTE/PMD/PUD) below one unmodeled top
    // directory: a level-1 leaf costs 4 accesses, a level-3 leaf costs 2.
    extra + u64::from(4 + 1 - geo.level(size))
}

/// Memory accesses for a two-dimensional (nested) walk with `guest` and
/// `host` page sizes: `(g + 1) · (h + 1) − 1` where `g`/`h` are the level
/// counts. Reproduces §2's numbers: 24 for 4KB+4KB, 15 for 2MB+2MB, 8 for
/// 1GB+1GB.
#[must_use]
pub fn nested_walk_accesses(geo: &PageGeometry, guest: PageSize, host: PageSize) -> u64 {
    nested_walk_accesses_at(geo, guest, host, PageTableDepth::FourLevel)
}

/// Nested walk accesses with an explicit page-table depth at both levels:
/// with five-level tables a 4KB+4KB miss needs up to 35 memory accesses,
/// making large pages even more valuable.
#[must_use]
pub fn nested_walk_accesses_at(
    geo: &PageGeometry,
    guest: PageSize,
    host: PageSize,
    depth: PageTableDepth,
) -> u64 {
    let g = walk_accesses_at(geo, guest, depth);
    let h = walk_accesses_at(geo, host, depth);
    (g + 1) * (h + 1) - 1
}

/// Converts walk memory accesses into cycles.
///
/// The absolute scale is a model constant (we have no Xeon to calibrate
/// against); what the experiments depend on is the *ratio* between page
/// sizes, which comes from the access counts above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkCostModel {
    /// Cycles per page-walk memory access (a blend of cache and DRAM
    /// latencies; page-walk caches are folded into this constant).
    pub mem_access_cycles: u64,
    /// Cycles for an L2 TLB hit.
    pub l2_hit_cycles: u64,
}

impl WalkCostModel {
    /// Cycles for a native walk of a page of `size`.
    #[must_use]
    pub fn walk_cycles(&self, geo: &PageGeometry, size: PageSize) -> u64 {
        walk_accesses(geo, size) * self.mem_access_cycles
    }

    /// Cycles for a nested walk.
    #[must_use]
    pub fn nested_walk_cycles(&self, geo: &PageGeometry, guest: PageSize, host: PageSize) -> u64 {
        nested_walk_accesses(geo, guest, host) * self.mem_access_cycles
    }
}

impl Default for WalkCostModel {
    fn default() -> Self {
        WalkCostModel {
            mem_access_cycles: 50,
            l2_hit_cycles: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X86: PageGeometry = PageGeometry::X86_64;
    const BASE: PageSize = PageSize::BASE;
    const HUGE: PageSize = PageSize::new(1);
    const GIANT: PageSize = PageSize::new(2);

    #[test]
    fn native_walk_accesses_match_paper() {
        assert_eq!(walk_accesses(&X86, BASE), 4);
        assert_eq!(walk_accesses(&X86, HUGE), 3);
        assert_eq!(walk_accesses(&X86, GIANT), 2);
    }

    #[test]
    fn group_rungs_pay_their_level_walk_depth() {
        // Sv48's 64KB NAPOT rung is a PTE-level leaf: full 4-access walk.
        let sv48 = PageGeometry::RISCV_SV48;
        let napot = PageSize::new(1);
        assert!(sv48.is_group(napot));
        assert_eq!(walk_accesses(&sv48, napot), walk_accesses(&sv48, BASE));
        // ARM's contiguous rungs walk like their underlying level too.
        let arm = PageGeometry::AARCH64;
        for size in arm.rungs() {
            let natural = arm
                .size_for_order(arm.level_order(arm.level(size)))
                .expect("natural rung exists");
            assert_eq!(walk_accesses(&arm, size), walk_accesses(&arm, natural));
        }
    }

    #[test]
    fn nested_walk_accesses_match_paper() {
        assert_eq!(nested_walk_accesses(&X86, BASE, BASE), 24);
        assert_eq!(nested_walk_accesses(&X86, HUGE, HUGE), 15);
        assert_eq!(nested_walk_accesses(&X86, GIANT, GIANT), 8);
    }

    #[test]
    fn mixed_nested_sizes_are_between_the_extremes() {
        let mixed = nested_walk_accesses(&X86, GIANT, BASE);
        assert!(mixed > 8 && mixed < 24);
        assert_eq!(mixed, nested_walk_accesses(&X86, BASE, GIANT));
    }

    #[test]
    fn five_level_tables_add_one_access_per_size() {
        for size in X86.rungs() {
            assert_eq!(
                walk_accesses_at(&X86, size, PageTableDepth::FiveLevel),
                walk_accesses(&X86, size) + 1
            );
        }
        // 4KB+4KB nested under LA57: (5+1)*(5+1)-1 = 35 accesses.
        assert_eq!(
            nested_walk_accesses_at(&X86, BASE, BASE, PageTableDepth::FiveLevel),
            35
        );
        assert_eq!(
            nested_walk_accesses_at(&X86, GIANT, GIANT, PageTableDepth::FiveLevel),
            15
        );
    }

    #[test]
    fn cycles_scale_with_the_model_constant() {
        let m = WalkCostModel {
            mem_access_cycles: 10,
            l2_hit_cycles: 7,
        };
        assert_eq!(m.walk_cycles(&X86, BASE), 40);
        assert_eq!(m.nested_walk_cycles(&X86, GIANT, GIANT), 80);
    }
}
