//! Accumulated translation statistics.

use trident_types::{PageSize, MAX_RUNGS};

use crate::TlbOutcome;

/// Counters for one page size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeStats {
    /// Translations served at this size.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Full misses (page walks).
    pub walks: u64,
    /// Cycles spent in walks (and L2 hit latency).
    pub cycles: u64,
}

/// The simulator's replacement for the walk-cycle performance counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    per_size: [SizeStats; MAX_RUNGS],
}

impl TranslationStats {
    /// Records one translation outcome.
    pub fn record(&mut self, size: PageSize, outcome: TlbOutcome, cycles: u64) {
        let s = &mut self.per_size[size.rung()];
        s.accesses += 1;
        s.cycles += cycles;
        match outcome {
            TlbOutcome::L1Hit => s.l1_hits += 1,
            TlbOutcome::L2Hit => s.l2_hits += 1,
            TlbOutcome::Miss => s.walks += 1,
        }
    }

    /// Counters for one page size.
    #[must_use]
    pub fn for_size(&self, size: PageSize) -> SizeStats {
        self.per_size[size.rung()]
    }

    /// Total translations.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.per_size.iter().map(|s| s.accesses).sum()
    }

    /// Total page walks.
    #[must_use]
    pub fn total_walks(&self) -> u64 {
        self.per_size.iter().map(|s| s.walks).sum()
    }

    /// Total cycles spent translating (walks + L2 hit latency) — the
    /// quantity Figure 1a/2a normalizes.
    #[must_use]
    pub fn total_walk_cycles(&self) -> u64 {
        self.per_size.iter().map(|s| s.cycles).sum()
    }

    /// Miss ratio over all translations, in `[0, 1]`.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.total_walks() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_size() {
        let mut s = TranslationStats::default();
        s.record(PageSize::BASE, TlbOutcome::Miss, 200);
        s.record(PageSize::BASE, TlbOutcome::L1Hit, 0);
        s.record(PageSize::new(2), TlbOutcome::L2Hit, 7);
        assert_eq!(s.for_size(PageSize::BASE).walks, 1);
        assert_eq!(s.for_size(PageSize::BASE).accesses, 2);
        assert_eq!(s.for_size(PageSize::new(2)).l2_hits, 1);
        assert_eq!(s.total_accesses(), 3);
        assert_eq!(s.total_walk_cycles(), 207);
        assert!((s.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_miss_ratio() {
        assert_eq!(TranslationStats::default().miss_ratio(), 0.0);
    }
}
