//! Identifier newtypes.

use core::fmt;

/// Identifier of an address space (one per simulated process or guest).
///
/// # Examples
///
/// ```
/// use trident_types::AsId;
/// let id = AsId::new(3);
/// assert_eq!(id.raw(), 3);
/// assert_eq!(id.to_string(), "as3");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsId(u32);

impl AsId {
    /// Wraps a raw identifier.
    #[must_use]
    pub const fn new(raw: u32) -> AsId {
        AsId(raw)
    }

    /// The raw identifier.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for AsId {
    fn from(raw: u32) -> AsId {
        AsId(raw)
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "as{}", self.0)
    }
}

/// Identifier of a tenant (one co-located customer of the shared
/// physical pool; a tenant owns one or more address spaces).
///
/// # Examples
///
/// ```
/// use trident_types::TenantId;
/// let id = TenantId::new(2);
/// assert_eq!(id.raw(), 2);
/// assert_eq!(id.to_string(), "t2");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// Wraps a raw identifier.
    #[must_use]
    pub const fn new(raw: u32) -> TenantId {
        TenantId(raw)
    }

    /// The raw identifier.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for TenantId {
    fn from(raw: u32) -> TenantId {
        TenantId(raw)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        assert_eq!(AsId::from(9).raw(), 9);
        assert_eq!(AsId::new(0).to_string(), "as0");
        assert_eq!(TenantId::from(7).raw(), 7);
        assert_eq!(TenantId::new(0).to_string(), "t0");
    }
}
