//! A packed, growable bitmap over small integer keys.
//!
//! The metadata hot paths (dirty-chunk feeds, promotion-candidate indexes,
//! unit-head maps) all need an ordered set of small integers with O(1)
//! insert/remove/contains and allocation-free iteration. [`DenseBitSet`]
//! packs those sets 64 keys per word; iteration walks set bits in
//! ascending order with `trailing_zeros`, and [`DenseBitSet::drain_into`]
//! empties the set into a caller-provided buffer without giving up the
//! word storage — the drain-in-place API the promotion daemon's per-tick
//! loop relies on to stay zero-alloc in steady state.

/// A packed bitmap over `u64` keys, growable on insert.
///
/// # Examples
///
/// ```
/// use trident_types::DenseBitSet;
///
/// let mut set = DenseBitSet::new();
/// set.insert(3);
/// set.insert(130);
/// set.insert(3);
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(3));
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 130]);
/// let mut out = Vec::new();
/// set.drain_into(&mut out);
/// assert_eq!(out, vec![3, 130]);
/// assert!(set.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> DenseBitSet {
        DenseBitSet::default()
    }

    /// Creates an empty set with capacity for keys below `keys`.
    #[must_use]
    pub fn with_capacity(keys: u64) -> DenseBitSet {
        DenseBitSet {
            words: vec![0; Self::word_of(keys.saturating_sub(1)) + 1],
            len: 0,
        }
    }

    fn word_of(key: u64) -> usize {
        usize::try_from(key / 64).expect("bitset key fits usize")
    }

    /// Number of keys in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is in the set.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.words
            .get(Self::word_of(key))
            .is_some_and(|w| w & (1 << (key % 64)) != 0)
    }

    /// Inserts `key`, growing the word storage as needed. Returns whether
    /// the key was newly inserted.
    pub fn insert(&mut self, key: u64) -> bool {
        let word = Self::word_of(key);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (key % 64);
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += usize::from(newly);
        newly
    }

    /// Removes `key`. Returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let Some(w) = self.words.get_mut(Self::word_of(key)) else {
            return false;
        };
        let mask = 1u64 << (key % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        self.len -= usize::from(present);
        present
    }

    /// Removes every key without shrinking the word storage.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates the keys in ascending order. Allocation-free.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .flat_map(|(i, &w)| BitIter {
                word: w,
                base: i as u64 * 64,
            })
    }

    /// Iterates the keys in `[start, end)` in ascending order without
    /// touching words outside the range. Allocation-free — the word-skipping
    /// scan behind ranged head/unit enumeration.
    pub fn iter_range(&self, start: u64, end: u64) -> impl Iterator<Item = u64> + '_ {
        let first_word = Self::word_of(start);
        self.words
            .iter()
            .enumerate()
            .skip(first_word)
            .take_while(move |(i, _)| (*i as u64) * 64 < end)
            .flat_map(move |(i, &w)| {
                let base = i as u64 * 64;
                let mut word = w;
                if base < start {
                    word &= !0u64 << (start - base);
                }
                if base + 64 > end {
                    word &= (1u64 << (end - base)) - 1;
                }
                BitIter { word, base }
            })
    }

    /// Drains the set into `out` (cleared first) in ascending key order,
    /// keeping the word storage for reuse — the zero-alloc replacement for
    /// "take the set and collect it into a fresh `Vec`".
    pub fn drain_into(&mut self, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.len);
        for (i, w) in self.words.iter_mut().enumerate() {
            let mut word = core::mem::take(w);
            while word != 0 {
                let bit = word.trailing_zeros() as u64;
                out.push(i as u64 * 64 + bit);
                word &= word - 1;
            }
        }
        self.len = 0;
    }

    /// The smallest key in the set, if any.
    #[must_use]
    pub fn first(&self) -> Option<u64> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i as u64 * 64 + u64::from(w.trailing_zeros()))
    }
}

impl FromIterator<u64> for DenseBitSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> DenseBitSet {
        let mut set = DenseBitSet::new();
        for key in iter {
            set.insert(key);
        }
        set
    }
}

/// Iterator over the set bits of one word.
struct BitIter {
    word: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as u64;
        self.word &= self.word - 1;
        Some(self.base + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new();
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(63));
        assert!(!s.contains(62));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.remove(10_000));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_ascending() {
        let keys = [513u64, 2, 64, 1, 511];
        let s: DenseBitSet = keys.into_iter().collect();
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        assert_eq!(s.iter().collect::<Vec<_>>(), sorted);
        assert_eq!(s.first(), Some(1));
    }

    #[test]
    fn drain_keeps_storage_and_empties() {
        let mut s = DenseBitSet::with_capacity(256);
        s.insert(200);
        s.insert(7);
        let mut out = vec![99];
        s.drain_into(&mut out);
        assert_eq!(out, vec![7, 200]);
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        // Storage survives; reinserting the same keys reallocates nothing.
        assert!(s.insert(200));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![200]);
    }

    #[test]
    fn iter_range_masks_both_ends() {
        let s: DenseBitSet = [0u64, 5, 63, 64, 65, 130, 200].into_iter().collect();
        assert_eq!(
            s.iter_range(5, 131).collect::<Vec<_>>(),
            vec![5, 63, 64, 65, 130]
        );
        assert_eq!(s.iter_range(6, 63).count(), 0);
        assert_eq!(s.iter_range(64, 65).collect::<Vec<_>>(), vec![64]);
        assert_eq!(s.iter_range(10, 10).count(), 0);
        assert_eq!(s.iter_range(150, 100_000).collect::<Vec<_>>(), vec![200]);
    }

    #[test]
    fn clear_resets() {
        let mut s: DenseBitSet = (0..100).collect();
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(50));
    }
}
