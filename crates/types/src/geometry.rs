//! Configurable page-size geometry.

use crate::{PageSize, Pfn, PhysAddr, VirtAddr, Vpn};

/// The geometry of an address space: how many base pages make up a huge and
/// a giant page, and how big a base page is.
///
/// The real x86-64 geometry is [`PageGeometry::X86_64`] (4KB base pages,
/// 2MB = 2⁹ base pages, 1GB = 2¹⁸ base pages). Tests may use
/// [`PageGeometry::TINY`] to exercise the same code paths on a miniature
/// address space.
///
/// # Examples
///
/// ```
/// use trident_types::{PageGeometry, PageSize, VirtAddr};
///
/// let geo = PageGeometry::X86_64;
/// let addr = VirtAddr::new(0x4000_0123);
/// assert!(!geo.is_aligned(addr.raw(), PageSize::Giant));
/// assert_eq!(geo.align_down(addr.raw(), PageSize::Base), 0x4000_0000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageGeometry {
    base_shift: u8,
    huge_order: u8,
    giant_order: u8,
}

impl PageGeometry {
    /// The real x86-64 geometry: 4KB base, 2MB huge, 1GB giant pages.
    pub const X86_64: PageGeometry = PageGeometry {
        base_shift: 12,
        huge_order: 9,
        giant_order: 18,
    };

    /// A miniature geometry for fast tests: 4KB base pages, huge = 8 base
    /// pages (32KB), giant = 64 base pages (256KB).
    pub const TINY: PageGeometry = PageGeometry {
        base_shift: 12,
        huge_order: 3,
        giant_order: 6,
    };

    /// Creates a geometry with the given base-page shift and huge/giant
    /// orders (expressed in base pages: a huge page is `2^huge_order` base
    /// pages, a giant page is `2^giant_order`).
    ///
    /// # Panics
    ///
    /// Panics if `huge_order == 0`, `giant_order <= huge_order`, or the
    /// total shift would overflow a `u64` address.
    #[must_use]
    pub fn new(base_shift: u8, huge_order: u8, giant_order: u8) -> PageGeometry {
        assert!(huge_order > 0, "huge pages must be larger than base pages");
        assert!(
            giant_order > huge_order,
            "giant pages must be larger than huge pages"
        );
        assert!(
            usize::from(base_shift) + usize::from(giant_order) < 60,
            "geometry overflows the address space"
        );
        PageGeometry {
            base_shift,
            huge_order,
            giant_order,
        }
    }

    /// Size of a base page in bytes.
    #[must_use]
    pub fn base_bytes(&self) -> u64 {
        1 << self.base_shift
    }

    /// log2 of the base page size in bytes.
    #[must_use]
    pub fn base_shift(&self) -> u8 {
        self.base_shift
    }

    /// The buddy-allocator order of `size`: a page of `size` spans
    /// `2^order(size)` base pages.
    #[must_use]
    pub fn order(&self, size: PageSize) -> u8 {
        match size {
            PageSize::Base => 0,
            PageSize::Huge => self.huge_order,
            PageSize::Giant => self.giant_order,
        }
    }

    /// The largest order the buddy allocator must track
    /// (the order of a giant page).
    #[must_use]
    pub fn max_order(&self) -> u8 {
        self.giant_order
    }

    /// The page size with exactly the given buddy order, if any.
    #[must_use]
    pub fn size_for_order(&self, order: u8) -> Option<PageSize> {
        PageSize::ALL.into_iter().find(|s| self.order(*s) == order)
    }

    /// Number of base pages spanned by a page of `size`.
    #[must_use]
    pub fn base_pages(&self, size: PageSize) -> u64 {
        1 << self.order(size)
    }

    /// Size in bytes of a page of `size`.
    #[must_use]
    pub fn bytes(&self, size: PageSize) -> u64 {
        self.base_bytes() << self.order(size)
    }

    /// Whether `raw` (a byte address) is aligned to `size`.
    #[must_use]
    pub fn is_aligned(&self, raw: u64, size: PageSize) -> bool {
        raw.is_multiple_of(self.bytes(size))
    }

    /// `raw` rounded down to the nearest `size` boundary.
    #[must_use]
    pub fn align_down(&self, raw: u64, size: PageSize) -> u64 {
        raw - raw % self.bytes(size)
    }

    /// `raw` rounded up to the nearest `size` boundary.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 64-bit address space.
    #[must_use]
    pub fn align_up(&self, raw: u64, size: PageSize) -> u64 {
        let b = self.bytes(size);
        raw.checked_add(b - 1).expect("address overflow") / b * b
    }

    /// Whether a base-page number is aligned to `size`
    /// (i.e. could begin a page of that size).
    #[must_use]
    pub fn is_page_aligned(&self, page: u64, size: PageSize) -> bool {
        page.is_multiple_of(self.base_pages(size))
    }

    /// The base-page number containing byte address `raw`.
    #[must_use]
    pub fn page_of(&self, raw: u64) -> u64 {
        raw >> self.base_shift
    }

    /// The first byte address of base-page number `page`.
    #[must_use]
    pub fn page_addr(&self, page: u64) -> u64 {
        page << self.base_shift
    }

    /// The virtual page number containing `addr`.
    #[must_use]
    pub fn vpn(&self, addr: VirtAddr) -> Vpn {
        Vpn::new(self.page_of(addr.raw()))
    }

    /// The physical frame number containing `addr`.
    #[must_use]
    pub fn pfn(&self, addr: PhysAddr) -> Pfn {
        Pfn::new(self.page_of(addr.raw()))
    }

    /// The index of the giant-page-sized region containing base page `page`.
    ///
    /// Smart compaction partitions physical memory into giant-page-sized
    /// regions and keeps per-region occupancy statistics.
    #[must_use]
    pub fn giant_region_of(&self, page: u64) -> u64 {
        page >> self.giant_order
    }

    /// The first base page of giant region `region`.
    #[must_use]
    pub fn giant_region_start(&self, region: u64) -> u64 {
        region << self.giant_order
    }

    /// Number of base pages needed to hold `bytes`, rounded up.
    #[must_use]
    pub fn pages_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.base_bytes())
    }
}

impl Default for PageGeometry {
    /// The default geometry is the real x86-64 layout.
    fn default() -> Self {
        PageGeometry::X86_64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GIB, KIB, MIB};

    #[test]
    fn x86_64_sizes_match_hardware() {
        let g = PageGeometry::X86_64;
        assert_eq!(g.bytes(PageSize::Base), 4 * KIB);
        assert_eq!(g.bytes(PageSize::Huge), 2 * MIB);
        assert_eq!(g.bytes(PageSize::Giant), GIB);
        assert_eq!(g.base_pages(PageSize::Huge), 512);
        assert_eq!(g.base_pages(PageSize::Giant), 512 * 512);
    }

    #[test]
    fn order_roundtrips_through_size_for_order() {
        for geo in [PageGeometry::X86_64, PageGeometry::TINY] {
            for size in PageSize::ALL {
                assert_eq!(geo.size_for_order(geo.order(size)), Some(size));
            }
            assert_eq!(geo.size_for_order(1), None);
        }
    }

    #[test]
    fn alignment_helpers_agree() {
        let g = PageGeometry::X86_64;
        let addr = 5 * GIB + 123 * MIB;
        assert!(!g.is_aligned(addr, PageSize::Giant));
        assert_eq!(g.align_down(addr, PageSize::Giant), 5 * GIB);
        assert_eq!(g.align_up(addr, PageSize::Giant), 6 * GIB);
        assert!(g.is_aligned(g.align_down(addr, PageSize::Huge), PageSize::Huge));
    }

    #[test]
    fn align_up_of_aligned_address_is_identity() {
        let g = PageGeometry::X86_64;
        assert_eq!(g.align_up(2 * GIB, PageSize::Giant), 2 * GIB);
        assert_eq!(g.align_up(0, PageSize::Giant), 0);
    }

    #[test]
    fn giant_region_partitioning() {
        let g = PageGeometry::TINY;
        assert_eq!(g.giant_region_of(0), 0);
        assert_eq!(g.giant_region_of(63), 0);
        assert_eq!(g.giant_region_of(64), 1);
        assert_eq!(g.giant_region_start(1), 64);
    }

    #[test]
    fn pages_for_bytes_rounds_up() {
        let g = PageGeometry::X86_64;
        assert_eq!(g.pages_for_bytes(0), 0);
        assert_eq!(g.pages_for_bytes(1), 1);
        assert_eq!(g.pages_for_bytes(4 * KIB), 1);
        assert_eq!(g.pages_for_bytes(4 * KIB + 1), 2);
    }

    #[test]
    #[should_panic(expected = "giant pages must be larger")]
    fn rejects_giant_not_larger_than_huge() {
        let _ = PageGeometry::new(12, 9, 9);
    }
}
