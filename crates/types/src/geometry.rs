//! Configurable page-size geometry: per-architecture size-class ladders.

use crate::page_size::MAX_RUNGS;
use crate::{PageSize, Pfn, PhysAddr, VirtAddr, Vpn};

/// Orders are bounded by the address-space overflow check in
/// [`PageGeometry::new`]; 64 entries cover every constructible order.
const ORDER_TABLE: usize = 64;

/// One rung of a geometry's ladder: a page size the architecture can
/// map, described by how it is encoded in the page table.
///
/// * `order` — log2 of the rung's span in base pages (its buddy order).
/// * `level` — the page-table level whose entries back it (1 = PTE,
///   2 = PMD, 3 = PUD). A rung whose order exceeds its level's natural
///   span is a *group* rung: it is realized as `2^k` adjacent entries
///   at `level` over one physically contiguous block.
/// * `napot` — the group is encoded architecturally in each PTE
///   (RISC-V SVNAPOT): the translation hardware reads the coalesced
///   size from the entry itself.
/// * `contiguous_span` — the group is a TLB-only *hint* (ARM contiguous
///   bit over `span` entries): the table keeps ordinary per-entry
///   mappings and only the TLB coalesces them, so the rung needs no
///   table reshaping to adopt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SizeClass {
    /// log2 of the rung's span in base pages (the buddy order).
    pub order: u8,
    /// Page-table level whose entries back this rung (1 = PTE leaf).
    pub level: u8,
    /// RISC-V SVNAPOT encoding: the group size lives in the PTE.
    pub napot: bool,
    /// ARM contiguous-bit hint over this many entries (TLB-only).
    pub contiguous_span: Option<u16>,
}

impl SizeClass {
    /// A natural leaf at `level` spanning `order` base pages.
    #[must_use]
    pub const fn leaf(order: u8, level: u8) -> SizeClass {
        SizeClass {
            order,
            level,
            napot: false,
            contiguous_span: None,
        }
    }

    /// A NAPOT group rung: `2^k` PTE-level entries, size encoded in each.
    #[must_use]
    pub const fn napot(order: u8, level: u8) -> SizeClass {
        SizeClass {
            order,
            level,
            napot: true,
            contiguous_span: None,
        }
    }

    /// A contiguous-bit hint rung over `span` entries at `level`.
    #[must_use]
    pub const fn contiguous(order: u8, level: u8, span: u16) -> SizeClass {
        SizeClass {
            order,
            level,
            napot: false,
            contiguous_span: Some(span),
        }
    }

    /// Whether the rung is a pure TLB hint (contiguous bit) rather than
    /// an architectural table encoding.
    #[must_use]
    pub const fn is_hint(&self) -> bool {
        self.contiguous_span.is_some()
    }

    const ZERO: SizeClass = SizeClass::leaf(0, 0);
}

/// The geometry of an address space: an architecture's ordered ladder of
/// [`SizeClass`]es over a radix page table, plus the base-page size.
///
/// Shipped ladders:
///
/// * [`PageGeometry::X86_64`] — 4KB / 2MB / 1GB (the default, and the
///   paper's testbed).
/// * [`PageGeometry::RISCV_SV48`] — Sv48 plus a 64KB SVNAPOT rung.
/// * [`PageGeometry::AARCH64`] — 4KB granule with 16-entry
///   contiguous-bit rungs at the PTE (64KB) and PMD (32MB) level.
/// * [`PageGeometry::TINY`] — a miniature 3-rung ladder for fast tests.
///
/// # Examples
///
/// ```
/// use trident_types::{PageGeometry, PageSize, VirtAddr};
///
/// let geo = PageGeometry::X86_64;
/// let addr = VirtAddr::new(0x4000_0123);
/// let giant = geo.largest();
/// assert!(!geo.is_aligned(addr.raw(), giant));
/// assert_eq!(geo.align_down(addr.raw(), PageSize::BASE), 0x4000_0000);
///
/// let sv48 = PageGeometry::RISCV_SV48;
/// assert_eq!(sv48.rung_count(), 4);
/// assert_eq!(sv48.label(PageSize::new(1)), "64KB");
/// assert!(sv48.class(PageSize::new(1)).napot);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageGeometry {
    name: &'static str,
    base_shift: u8,
    /// Natural order of a leaf at levels 1..=3 (level_orders[0] == 0).
    level_orders: [u8; 3],
    ladder: [SizeClass; MAX_RUNGS],
    rungs: u8,
    /// The arch's unscaled orders, kept through [`scaled`](Self::scaled)
    /// so labels stay the hardware sizes ("1GB") at any memory scale.
    arch_orders: [u8; MAX_RUNGS],
    /// Precomputed order → rung lookup (-1 = no rung at that order), so
    /// the buddy free/alloc hot paths never scan the ladder.
    order_to_rung: [i8; ORDER_TABLE],
}

impl PageGeometry {
    /// The real x86-64 ladder: 4KB base, 2MB huge, 1GB giant pages.
    pub const X86_64: PageGeometry = PageGeometry::build(
        "x86_64",
        12,
        [0, 9, 18],
        [
            SizeClass::leaf(0, 1),
            SizeClass::leaf(9, 2),
            SizeClass::leaf(18, 3),
            SizeClass::ZERO,
            SizeClass::ZERO,
            SizeClass::ZERO,
        ],
        3,
    );

    /// RISC-V Sv48 with SVNAPOT: 4KB, 64KB (NAPOT, 16 PTEs), 2MB, 1GB.
    ///
    /// The 64KB rung is an architectural page — the NAPOT encoding lives
    /// in the PTE — but its walk is still a full PTE-level walk; the win
    /// is TLB reach, not walk depth.
    pub const RISCV_SV48: PageGeometry = PageGeometry::build(
        "sv48",
        12,
        [0, 9, 18],
        [
            SizeClass::leaf(0, 1),
            SizeClass::napot(4, 1),
            SizeClass::leaf(9, 2),
            SizeClass::leaf(18, 3),
            SizeClass::ZERO,
            SizeClass::ZERO,
        ],
        4,
    );

    /// AArch64 with a 4KB granule and the contiguous bit: 4KB, 64KB
    /// (16 contiguous PTEs), 2MB, 32MB (16 contiguous PMDs), 1GB.
    ///
    /// The contiguous-bit rungs are pure TLB hints: the table keeps
    /// ordinary per-entry mappings and no reshaping is ever needed —
    /// only the TLB coalesces the span into one entry.
    pub const AARCH64: PageGeometry = PageGeometry::build(
        "aarch64",
        12,
        [0, 9, 18],
        [
            SizeClass::leaf(0, 1),
            SizeClass::contiguous(4, 1, 16),
            SizeClass::leaf(9, 2),
            SizeClass::contiguous(13, 2, 16),
            SizeClass::leaf(18, 3),
            SizeClass::ZERO,
        ],
        5,
    );

    /// A miniature geometry for fast tests: 4KB base pages, huge = 8 base
    /// pages (32KB), giant = 64 base pages (256KB).
    pub const TINY: PageGeometry = PageGeometry::build(
        "tiny",
        12,
        [0, 3, 6],
        [
            SizeClass::leaf(0, 1),
            SizeClass::leaf(3, 2),
            SizeClass::leaf(6, 3),
            SizeClass::ZERO,
            SizeClass::ZERO,
            SizeClass::ZERO,
        ],
        3,
    );

    /// [`PageGeometry::TINY`] plus a 4-page NAPOT group rung between base
    /// and huge — the miniature analogue of [`PageGeometry::RISCV_SV48`]
    /// for exercising group-leaf paths in fast tests.
    pub const TINY_NAPOT: PageGeometry = PageGeometry::build(
        "tiny_napot",
        12,
        [0, 3, 6],
        [
            SizeClass::leaf(0, 1),
            SizeClass::napot(2, 1),
            SizeClass::leaf(3, 2),
            SizeClass::leaf(6, 3),
            SizeClass::ZERO,
            SizeClass::ZERO,
        ],
        4,
    );

    /// Every shipped architecture ladder (the property-test universe).
    pub const SHIPPED: [PageGeometry; 3] = [
        PageGeometry::X86_64,
        PageGeometry::RISCV_SV48,
        PageGeometry::AARCH64,
    ];

    const fn build(
        name: &'static str,
        base_shift: u8,
        level_orders: [u8; 3],
        ladder: [SizeClass; MAX_RUNGS],
        rungs: u8,
    ) -> PageGeometry {
        assert!(rungs >= 1 && rungs as usize <= MAX_RUNGS);
        let mut order_to_rung = [-1i8; ORDER_TABLE];
        let mut arch_orders = [0u8; MAX_RUNGS];
        let mut i = 0;
        while i < rungs as usize {
            let class = ladder[i];
            assert!((class.order as usize) < ORDER_TABLE);
            assert!(class.level >= 1 && class.level <= 3);
            if i > 0 {
                assert!(
                    class.order > ladder[i - 1].order,
                    "ladder orders must be strictly ascending"
                );
                assert!(class.level >= ladder[i - 1].level);
            }
            assert!(class.order >= level_orders[(class.level - 1) as usize]);
            order_to_rung[class.order as usize] = i as i8;
            arch_orders[i] = class.order;
            i += 1;
        }
        PageGeometry {
            name,
            base_shift,
            level_orders,
            ladder,
            rungs,
            arch_orders,
            order_to_rung,
        }
    }

    /// Creates a classic 3-rung geometry with the given base-page shift
    /// and huge/giant orders (expressed in base pages: a huge page is
    /// `2^huge_order` base pages, a giant page is `2^giant_order`).
    ///
    /// # Panics
    ///
    /// Panics if `huge_order == 0`, `giant_order <= huge_order`, or the
    /// total shift would overflow a `u64` address.
    #[must_use]
    pub fn new(base_shift: u8, huge_order: u8, giant_order: u8) -> PageGeometry {
        assert!(huge_order > 0, "huge pages must be larger than base pages");
        assert!(
            giant_order > huge_order,
            "giant pages must be larger than huge pages"
        );
        assert!(
            usize::from(base_shift) + usize::from(giant_order) < 60,
            "geometry overflows the address space"
        );
        PageGeometry::build(
            "custom",
            base_shift,
            [0, huge_order, giant_order],
            [
                SizeClass::leaf(0, 1),
                SizeClass::leaf(huge_order, 2),
                SizeClass::leaf(giant_order, 3),
                SizeClass::ZERO,
                SizeClass::ZERO,
                SizeClass::ZERO,
            ],
            3,
        )
    }

    /// Looks an architecture up by its stable id: `"x86_64"`, `"sv48"`,
    /// `"aarch64"` (or the aliases `"x86-64"`, `"riscv_sv48"`,
    /// `"arm64"`), plus `"tiny"` for tests.
    #[must_use]
    pub fn by_name(name: &str) -> Option<PageGeometry> {
        match name {
            "x86_64" | "x86-64" => Some(PageGeometry::X86_64),
            "sv48" | "riscv_sv48" => Some(PageGeometry::RISCV_SV48),
            "aarch64" | "arm64" => Some(PageGeometry::AARCH64),
            "tiny" => Some(PageGeometry::TINY),
            _ => None,
        }
    }

    /// The architecture's stable id (`"x86_64"`, `"sv48"`, `"aarch64"`,
    /// `"tiny"`, or `"custom"`); preserved by [`scaled`](Self::scaled).
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Size of a base page in bytes.
    #[must_use]
    pub fn base_bytes(&self) -> u64 {
        1 << self.base_shift
    }

    /// log2 of the base page size in bytes.
    #[must_use]
    pub fn base_shift(&self) -> u8 {
        self.base_shift
    }

    /// Number of rungs on the ladder.
    #[must_use]
    pub fn rung_count(&self) -> usize {
        self.rungs as usize
    }

    /// The ladder's rungs, smallest first.
    pub fn rungs(&self) -> impl DoubleEndedIterator<Item = PageSize> {
        (0..self.rungs as usize).map(PageSize::new)
    }

    /// The ladder's rungs, largest first — the order in which Trident
    /// attempts to satisfy a fault or promotion.
    pub fn rungs_desc(&self) -> impl Iterator<Item = PageSize> {
        self.rungs().rev()
    }

    /// The large rungs (everything above base), largest first.
    pub fn large_rungs_desc(&self) -> impl Iterator<Item = PageSize> {
        self.rungs_desc().filter(|s| s.is_large())
    }

    /// The largest rung.
    #[must_use]
    pub fn largest(&self) -> PageSize {
        PageSize::new(self.rungs as usize - 1)
    }

    /// The next larger rung, or `None` at the top of the ladder.
    #[must_use]
    pub fn larger(&self, size: PageSize) -> Option<PageSize> {
        let next = size.rung() + 1;
        (next < self.rungs as usize).then(|| PageSize::new(next))
    }

    /// The full size-class descriptor of a rung.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a rung of this ladder.
    #[must_use]
    pub fn class(&self, size: PageSize) -> SizeClass {
        assert!(size.rung() < self.rungs as usize, "rung not on this ladder");
        self.ladder[size.rung()]
    }

    /// The buddy-allocator order of `size`: a page of `size` spans
    /// `2^order(size)` base pages.
    #[must_use]
    pub fn order(&self, size: PageSize) -> u8 {
        self.class(size).order
    }

    /// The page-table level whose entries back `size` (1 = PTE leaf).
    #[must_use]
    pub fn level(&self, size: PageSize) -> u8 {
        self.class(size).level
    }

    /// The natural order of a leaf at table `level` (1..=3): the span
    /// one entry covers by itself.
    #[must_use]
    pub fn level_order(&self, level: u8) -> u8 {
        self.level_orders[(level - 1) as usize]
    }

    /// Whether `size` is a group rung: realized as multiple adjacent
    /// entries at its level (SVNAPOT or a contiguous-bit span) rather
    /// than one entry.
    #[must_use]
    pub fn is_group(&self, size: PageSize) -> bool {
        let c = self.class(size);
        c.order != self.level_order(c.level)
    }

    /// Entries at the rung's level making up one page of `size`
    /// (1 for natural leaves, `2^k` for group rungs).
    #[must_use]
    pub fn group_span(&self, size: PageSize) -> u64 {
        let c = self.class(size);
        1 << (c.order - self.level_order(c.level))
    }

    /// The largest order the buddy allocator must track
    /// (the order of the largest rung).
    #[must_use]
    pub fn max_order(&self) -> u8 {
        self.ladder[self.rungs as usize - 1].order
    }

    /// The rung with exactly the given buddy order, if any — a
    /// precomputed table lookup, not a ladder scan (this sits on the
    /// buddy free/alloc hot paths).
    #[must_use]
    pub fn size_for_order(&self, order: u8) -> Option<PageSize> {
        let idx = *self.order_to_rung.get(order as usize)?;
        (idx >= 0).then(|| PageSize::new(idx as usize))
    }

    /// Number of base pages spanned by a page of `size`.
    #[must_use]
    pub fn base_pages(&self, size: PageSize) -> u64 {
        1 << self.order(size)
    }

    /// Size in bytes of a page of `size`.
    #[must_use]
    pub fn bytes(&self, size: PageSize) -> u64 {
        self.base_bytes() << self.order(size)
    }

    /// Human-readable label of a rung using the architecture's *unscaled*
    /// sizes (`"4KB"`, `"64KB"`, `"2MB"`, `"1GB"`), as the paper's
    /// figures do — stable across [`scaled`](Self::scaled) geometries.
    #[must_use]
    pub fn label(&self, size: PageSize) -> String {
        assert!(size.rung() < self.rungs as usize, "rung not on this ladder");
        let bytes = self.base_bytes() << self.arch_orders[size.rung()];
        if bytes < 1 << 20 {
            format!("{}KB", bytes >> 10)
        } else if bytes < 1 << 30 {
            format!("{}MB", bytes >> 20)
        } else {
            format!("{}GB", bytes >> 30)
        }
    }

    /// Whether `raw` (a byte address) is aligned to `size`.
    #[must_use]
    pub fn is_aligned(&self, raw: u64, size: PageSize) -> bool {
        raw.is_multiple_of(self.bytes(size))
    }

    /// `raw` rounded down to the nearest `size` boundary.
    #[must_use]
    pub fn align_down(&self, raw: u64, size: PageSize) -> u64 {
        raw - raw % self.bytes(size)
    }

    /// `raw` rounded up to the nearest `size` boundary.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the 64-bit address space.
    #[must_use]
    pub fn align_up(&self, raw: u64, size: PageSize) -> u64 {
        let b = self.bytes(size);
        raw.checked_add(b - 1).expect("address overflow") / b * b
    }

    /// Whether a base-page number is aligned to `size`
    /// (i.e. could begin a page of that size).
    #[must_use]
    pub fn is_page_aligned(&self, page: u64, size: PageSize) -> bool {
        page.is_multiple_of(self.base_pages(size))
    }

    /// The base-page number containing byte address `raw`.
    #[must_use]
    pub fn page_of(&self, raw: u64) -> u64 {
        raw >> self.base_shift
    }

    /// The first byte address of base-page number `page`.
    #[must_use]
    pub fn page_addr(&self, page: u64) -> u64 {
        page << self.base_shift
    }

    /// The virtual page number containing `addr`.
    #[must_use]
    pub fn vpn(&self, addr: VirtAddr) -> Vpn {
        Vpn::new(self.page_of(addr.raw()))
    }

    /// The physical frame number containing `addr`.
    #[must_use]
    pub fn pfn(&self, addr: PhysAddr) -> Pfn {
        Pfn::new(self.page_of(addr.raw()))
    }

    /// The index of the largest-rung-sized region containing base page
    /// `page`.
    ///
    /// Smart compaction partitions physical memory into regions of the
    /// ladder's largest page size and keeps per-region occupancy
    /// statistics.
    #[must_use]
    pub fn giant_region_of(&self, page: u64) -> u64 {
        page >> self.max_order()
    }

    /// The first base page of region `region`.
    #[must_use]
    pub fn giant_region_start(&self, region: u64) -> u64 {
        region << self.max_order()
    }

    /// Number of base pages needed to hold `bytes`, rounded up.
    #[must_use]
    pub fn pages_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.base_bytes())
    }

    /// The geometry with every large rung's order reduced by `shift`
    /// (memory scaling, DESIGN.md §2): page-size *ratios* against
    /// footprints and TLB reach stay as on real hardware while
    /// everything shrinks. Labels and the arch id are preserved.
    ///
    /// Natural leaves keep strictly ascending level orders (clamped at
    /// 1 base-page order apart); a group rung whose scaled order would
    /// collide with its neighbors is dropped from the scaled ladder.
    #[must_use]
    pub fn scaled(&self, shift: u8) -> PageGeometry {
        if shift == 0 {
            return *self;
        }
        let s = i16::from(shift);
        // Scale the natural level orders first: each level keeps at
        // least one base-page order over the previous.
        let mut level_orders = [0u8; 3];
        for lvl in 1..3 {
            let scaled = i16::from(self.level_orders[lvl]) - s;
            level_orders[lvl] = scaled.max(i16::from(level_orders[lvl - 1]) + 1) as u8;
        }
        let mut ladder = [SizeClass::ZERO; MAX_RUNGS];
        let mut arch_orders = [0u8; MAX_RUNGS];
        let mut order_to_rung = [-1i8; ORDER_TABLE];
        let mut kept = 0usize;
        for i in 0..self.rungs as usize {
            let mut class = self.ladder[i];
            let natural = level_orders[(class.level - 1) as usize];
            if class.order == self.level_orders[(class.level - 1) as usize] {
                class.order = natural;
            } else {
                // Group rung: clamp into the open interval between its
                // neighbors, or drop it when the scale squeezes it out.
                let prev = i16::from(ladder[kept - 1].order);
                let next = if (class.level as usize) < 3 {
                    i16::from(level_orders[class.level as usize])
                } else {
                    i16::MAX
                };
                let cand = (i16::from(class.order) - s).max(prev + 1);
                if cand >= next {
                    continue;
                }
                class.order = cand as u8;
            }
            ladder[kept] = class;
            arch_orders[kept] = self.arch_orders[i];
            order_to_rung[class.order as usize] = kept as i8;
            kept += 1;
        }
        PageGeometry {
            name: self.name,
            base_shift: self.base_shift,
            level_orders,
            ladder,
            rungs: kept as u8,
            arch_orders,
            order_to_rung,
        }
    }
}

impl Default for PageGeometry {
    /// The default geometry is the real x86-64 layout.
    fn default() -> Self {
        PageGeometry::X86_64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GIB, KIB, MIB};

    #[test]
    fn x86_64_sizes_match_hardware() {
        let g = PageGeometry::X86_64;
        let rungs: Vec<PageSize> = g.rungs().collect();
        assert_eq!(g.bytes(rungs[0]), 4 * KIB);
        assert_eq!(g.bytes(rungs[1]), 2 * MIB);
        assert_eq!(g.bytes(rungs[2]), GIB);
        assert_eq!(g.base_pages(rungs[1]), 512);
        assert_eq!(g.base_pages(rungs[2]), 512 * 512);
        assert_eq!(g.label(rungs[0]), "4KB");
        assert_eq!(g.label(rungs[1]), "2MB");
        assert_eq!(g.label(rungs[2]), "1GB");
    }

    #[test]
    fn shipped_ladders_describe_their_architectures() {
        let sv48 = PageGeometry::RISCV_SV48;
        assert_eq!(sv48.rung_count(), 4);
        let napot = PageSize::new(1);
        assert_eq!(sv48.bytes(napot), 64 * KIB);
        assert!(sv48.class(napot).napot);
        assert_eq!(sv48.level(napot), 1);
        assert!(sv48.is_group(napot));
        assert_eq!(sv48.group_span(napot), 16);
        assert_eq!(sv48.label(sv48.largest()), "1GB");

        let arm = PageGeometry::AARCH64;
        assert_eq!(arm.rung_count(), 5);
        let contig_pte = PageSize::new(1);
        let contig_pmd = PageSize::new(3);
        assert_eq!(arm.class(contig_pte).contiguous_span, Some(16));
        assert!(arm.class(contig_pte).is_hint());
        assert_eq!(arm.bytes(contig_pmd), 32 * MIB);
        assert_eq!(arm.level(contig_pmd), 2);
        assert_eq!(arm.group_span(contig_pmd), 16);
        assert_eq!(arm.label(contig_pmd), "32MB");
    }

    #[test]
    fn order_roundtrips_through_size_for_order() {
        for geo in [
            PageGeometry::X86_64,
            PageGeometry::TINY,
            PageGeometry::RISCV_SV48,
            PageGeometry::AARCH64,
        ] {
            for size in geo.rungs() {
                assert_eq!(geo.size_for_order(geo.order(size)), Some(size));
            }
            assert_eq!(geo.size_for_order(1), None);
            assert_eq!(geo.size_for_order(63), None);
        }
    }

    #[test]
    fn by_name_resolves_every_shipped_arch() {
        for geo in PageGeometry::SHIPPED {
            assert_eq!(PageGeometry::by_name(geo.name()), Some(geo));
        }
        assert_eq!(PageGeometry::by_name("arm64"), Some(PageGeometry::AARCH64));
        assert_eq!(PageGeometry::by_name("vax"), None);
    }

    #[test]
    fn alignment_helpers_agree() {
        let g = PageGeometry::X86_64;
        let giant = g.largest();
        let huge = PageSize::new(1);
        let addr = 5 * GIB + 123 * MIB;
        assert!(!g.is_aligned(addr, giant));
        assert_eq!(g.align_down(addr, giant), 5 * GIB);
        assert_eq!(g.align_up(addr, giant), 6 * GIB);
        assert!(g.is_aligned(g.align_down(addr, huge), huge));
    }

    #[test]
    fn align_up_of_aligned_address_is_identity() {
        let g = PageGeometry::X86_64;
        let giant = g.largest();
        assert_eq!(g.align_up(2 * GIB, giant), 2 * GIB);
        assert_eq!(g.align_up(0, giant), 0);
    }

    #[test]
    fn giant_region_partitioning() {
        let g = PageGeometry::TINY;
        assert_eq!(g.giant_region_of(0), 0);
        assert_eq!(g.giant_region_of(63), 0);
        assert_eq!(g.giant_region_of(64), 1);
        assert_eq!(g.giant_region_start(1), 64);
    }

    #[test]
    fn pages_for_bytes_rounds_up() {
        let g = PageGeometry::X86_64;
        assert_eq!(g.pages_for_bytes(0), 0);
        assert_eq!(g.pages_for_bytes(1), 1);
        assert_eq!(g.pages_for_bytes(4 * KIB), 1);
        assert_eq!(g.pages_for_bytes(4 * KIB + 1), 2);
    }

    #[test]
    fn scaled_x86_matches_the_classic_derivation() {
        // The historical scaling rule was (12, 9 - min(shift, 8),
        // 18 - shift); the ladder transform must reproduce it exactly
        // for bit-identity of every scaled x86 experiment.
        for shift in 0u8..=8 {
            let scaled = PageGeometry::X86_64.scaled(shift);
            assert_eq!(scaled.base_shift(), 12);
            assert_eq!(scaled.rung_count(), 3);
            let huge = PageSize::new(1);
            assert_eq!(scaled.order(huge), 9 - shift.min(8));
            assert_eq!(scaled.order(scaled.largest()), 18 - shift);
            assert_eq!(scaled.label(scaled.largest()), "1GB");
            assert_eq!(scaled.name(), "x86_64");
        }
    }

    #[test]
    fn scaled_ladders_stay_strictly_ascending() {
        for geo in PageGeometry::SHIPPED {
            for shift in 0u8..=8 {
                let s = geo.scaled(shift);
                let orders: Vec<u8> = s.rungs().map(|r| s.order(r)).collect();
                for w in orders.windows(2) {
                    assert!(w[0] < w[1], "{} shift {shift}: {orders:?}", geo.name());
                }
                // Group rungs may drop out under heavy scaling, natural
                // leaves never do.
                assert!(s.rung_count() >= 3);
                assert_eq!(s.order(PageSize::BASE), 0);
                for r in s.rungs() {
                    assert!(s.order(r) >= s.level_order(s.level(r)));
                }
            }
        }
    }

    #[test]
    fn sv48_napot_rung_survives_moderate_scaling() {
        let s = PageGeometry::RISCV_SV48.scaled(5); // scale 32
        assert_eq!(s.rung_count(), 4);
        let napot = PageSize::new(1);
        assert!(s.class(napot).napot);
        assert_eq!(s.order(napot), 1);
        assert_eq!(s.label(napot), "64KB");
    }

    #[test]
    #[should_panic(expected = "giant pages must be larger")]
    fn rejects_giant_not_larger_than_huge() {
        let _ = PageGeometry::new(12, 9, 9);
    }
}
