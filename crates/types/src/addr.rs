//! Strongly-typed addresses and page numbers.
//!
//! Virtual and physical quantities are deliberately distinct types so that
//! the simulator cannot confuse a guest-virtual page with a physical frame —
//! exactly the class of bug the paper's nested-translation machinery (gVA →
//! gPA → hPA) invites.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit value.
            #[must_use]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw 64-bit value.
            #[must_use]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Checked addition; `None` on overflow.
            #[must_use]
            pub fn checked_add(self, rhs: u64) -> Option<Self> {
                self.0.checked_add(rhs).map(Self)
            }
        }

        impl Add<u64> for $name {
            type Output = Self;
            fn add(self, rhs: u64) -> Self {
                Self(self.0.checked_add(rhs).expect("address overflow"))
            }
        }

        impl AddAssign<u64> for $name {
            fn add_assign(&mut self, rhs: u64) {
                *self = *self + rhs;
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0.checked_sub(rhs.0).expect("address underflow")
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_newtype!(
    /// A virtual byte address.
    ///
    /// Under virtualization this is a *guest* virtual address; the simulator
    /// never exposes host-virtual addresses.
    VirtAddr
);

addr_newtype!(
    /// A physical byte address. Under virtualization, the meaning (guest- or
    /// host-physical) is determined by which address space produced it.
    PhysAddr
);

addr_newtype!(
    /// A virtual page number, counted in base pages.
    Vpn
);

addr_newtype!(
    /// A physical frame number, counted in base pages.
    ///
    /// # Examples
    ///
    /// ```
    /// use trident_types::Pfn;
    /// let f = Pfn::new(512);
    /// assert_eq!((f + 512).raw(), 1024);
    /// assert_eq!(Pfn::new(1024) - f, 512);
    /// ```
    Pfn
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let a = VirtAddr::new(0x1000);
        assert_eq!((a + 0x234).raw(), 0x1234);
        assert_eq!(VirtAddr::new(0x2000) - a, 0x1000);
        let mut b = a;
        b += 8;
        assert_eq!(b.raw(), 0x1008);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Pfn::new(u64::MAX).checked_add(1), None);
        assert_eq!(Pfn::new(1).checked_add(1), Some(Pfn::new(2)));
    }

    #[test]
    #[should_panic(expected = "address underflow")]
    fn subtraction_underflow_panics() {
        let _ = Pfn::new(0) - Pfn::new(1);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr::new(0xdead).to_string(), "0xdead");
        assert_eq!(format!("{:x}", Vpn::new(255)), "ff");
    }

    #[test]
    fn types_are_distinct() {
        // Compile-time property: a function over Pfn cannot take a Vpn.
        fn takes_pfn(p: Pfn) -> u64 {
            p.raw()
        }
        assert_eq!(takes_pfn(Pfn::new(7)), 7);
    }
}
