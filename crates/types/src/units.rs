//! Byte-size unit constants.

/// One kibibyte (1024 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte (1024 KiB).
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte (1024 MiB).
pub const GIB: u64 = 1024 * MIB;
