//! The unified error type for the Trident workspace.
//!
//! Physical-memory, virtual-memory and policy failures used to live in
//! three separate enums (`phys::PhysMemError`, `vm::MapError`,
//! `core::PolicyError`), which forced `core::fault` to double-wrap
//! allocation failures on their way up to the simulator. They are now a
//! single flat [`TridentError`]; the old names survive as type aliases
//! so existing signatures keep compiling.

use core::fmt;
use std::error::Error;

use crate::{PageSize, Vpn};

/// A contiguous chunk of the requested order could not be allocated.
///
/// This is the signal that makes Trident fall back from 1GB to 2MB to 4KB
/// pages, or trigger compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocError {
    /// The buddy order that was requested (in base pages: `2^order`).
    pub order: u8,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no contiguous free chunk of order {} available",
            self.order
        )
    }
}

impl Error for AllocError {}

/// Every error the memory-management stack can raise, in one flat enum.
///
/// Grouped by origin:
/// - physical memory: [`OutOfContiguousMemory`](Self::OutOfContiguousMemory),
///   [`FrameOutOfBounds`](Self::FrameOutOfBounds),
///   [`NotAUnitHead`](Self::NotAUnitHead), [`AlreadyFree`](Self::AlreadyFree)
/// - virtual memory: [`Unaligned`](Self::Unaligned),
///   [`Overlap`](Self::Overlap), [`NotMapped`](Self::NotMapped),
///   [`NotAMappingHead`](Self::NotAMappingHead),
///   [`NoVirtualSpace`](Self::NoVirtualSpace)
/// - policy / simulator: [`BadAddress`](Self::BadAddress),
///   [`InvalidConfig`](Self::InvalidConfig)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TridentError {
    /// Allocation failed for lack of a contiguous chunk.
    OutOfContiguousMemory(AllocError),
    /// The frame number lies outside the configured physical memory.
    FrameOutOfBounds {
        /// The offending frame number.
        pfn: u64,
    },
    /// The operation expected the head frame of an allocation unit.
    NotAUnitHead {
        /// The offending frame number.
        pfn: u64,
    },
    /// The frame is already free.
    AlreadyFree {
        /// The offending frame number.
        pfn: u64,
    },
    /// The virtual or physical page number is not aligned to the page size.
    Unaligned {
        /// The offending virtual page.
        vpn: Vpn,
        /// The requested page size.
        size: PageSize,
    },
    /// Part of the requested span is already mapped.
    Overlap {
        /// The virtual page where the conflict was found.
        vpn: Vpn,
    },
    /// No mapping exists where one was expected.
    NotMapped {
        /// The virtual page that was expected to be mapped.
        vpn: Vpn,
    },
    /// The operation requires the head page of a mapping, but `vpn` lies in
    /// the middle of a larger leaf.
    NotAMappingHead {
        /// The offending virtual page.
        vpn: Vpn,
    },
    /// The requested virtual address range does not fit in any hole of the
    /// address space.
    NoVirtualSpace {
        /// The number of bytes requested.
        bytes: u64,
    },
    /// The faulting address does not belong to any VMA.
    BadAddress(Vpn),
    /// A configuration builder rejected its inputs.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why the value was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for TridentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TridentError::OutOfContiguousMemory(e) => write!(f, "{e}"),
            TridentError::FrameOutOfBounds { pfn } => {
                write!(f, "frame {pfn:#x} is outside physical memory")
            }
            TridentError::NotAUnitHead { pfn } => {
                write!(f, "frame {pfn:#x} is not the head of an allocation unit")
            }
            TridentError::AlreadyFree { pfn } => write!(f, "frame {pfn:#x} is already free"),
            TridentError::Unaligned { vpn, size } => {
                write!(
                    f,
                    "page {vpn} is not aligned for a rung-{} mapping",
                    size.rung()
                )
            }
            TridentError::Overlap { vpn } => write!(f, "page {vpn} is already mapped"),
            TridentError::NotMapped { vpn } => write!(f, "page {vpn} is not mapped"),
            TridentError::NotAMappingHead { vpn } => {
                write!(f, "page {vpn} is not the head of a mapping")
            }
            TridentError::NoVirtualSpace { bytes } => {
                write!(f, "no virtual-address hole of {bytes} bytes available")
            }
            TridentError::BadAddress(vpn) => {
                write!(f, "page {vpn} does not belong to any VMA")
            }
            TridentError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: {field} {reason}")
            }
        }
    }
}

impl Error for TridentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TridentError::OutOfContiguousMemory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AllocError> for TridentError {
    fn from(e: AllocError) -> Self {
        TridentError::OutOfContiguousMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = AllocError { order: 18 };
        assert!(e.to_string().contains("order 18"));
        let p: TridentError = e.into();
        assert_eq!(p.to_string(), e.to_string());
        assert!(TridentError::AlreadyFree { pfn: 16 }
            .to_string()
            .contains("0x10"));
        assert!(TridentError::InvalidConfig {
            field: "chunk_budget",
            reason: "must be nonzero",
        }
        .to_string()
        .contains("chunk_budget"));
    }

    #[test]
    fn source_chains_to_alloc_error() {
        let p = TridentError::from(AllocError { order: 9 });
        assert!(p.source().is_some());
        assert!(TridentError::FrameOutOfBounds { pfn: 1 }.source().is_none());
    }

    #[test]
    fn display_is_nonempty_and_distinct_for_every_variant() {
        let all = [
            TridentError::OutOfContiguousMemory(AllocError { order: 18 }),
            TridentError::FrameOutOfBounds { pfn: 1 },
            TridentError::NotAUnitHead { pfn: 2 },
            TridentError::AlreadyFree { pfn: 3 },
            TridentError::Unaligned {
                vpn: Vpn::new(4),
                size: PageSize::new(1),
            },
            TridentError::Overlap { vpn: Vpn::new(5) },
            TridentError::NotMapped { vpn: Vpn::new(6) },
            TridentError::NotAMappingHead { vpn: Vpn::new(7) },
            TridentError::NoVirtualSpace { bytes: 8 },
            TridentError::BadAddress(Vpn::new(9)),
            TridentError::InvalidConfig {
                field: "seed",
                reason: "must be set",
            },
        ];
        let messages: Vec<String> = all.iter().map(ToString::to_string).collect();
        for m in &messages {
            assert!(!m.is_empty());
        }
        let mut dedup = messages.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            messages.len(),
            "every variant renders a distinct message"
        );
        // Only the allocation failure carries a source.
        for e in &all {
            assert_eq!(
                e.source().is_some(),
                matches!(e, TridentError::OutOfContiguousMemory(_)),
                "{e}"
            );
        }
    }

    #[test]
    fn vm_variants_mention_the_page() {
        let e = TridentError::Overlap { vpn: Vpn::new(16) };
        assert!(e.to_string().contains("0x10"));
        let u = TridentError::Unaligned {
            vpn: Vpn::new(3),
            size: PageSize::new(2),
        };
        assert!(u.to_string().contains("rung-2"));
    }
}
