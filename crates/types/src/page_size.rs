//! The three-page-size taxonomy of x86-64 processors.

use core::fmt;

/// One of the three page sizes supported by x86-64 processors.
///
/// The concrete byte size of each variant is determined by a
/// [`PageGeometry`](crate::PageGeometry); under the real x86-64 geometry
/// these are 4KB, 2MB and 1GB respectively.
///
/// # Examples
///
/// ```
/// use trident_types::PageSize;
///
/// // Ordered smallest to largest, so `Ord` can express "at least as big as".
/// assert!(PageSize::Giant > PageSize::Huge);
/// assert!(PageSize::Huge > PageSize::Base);
/// assert_eq!(PageSize::ALL.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// The base page size (4KB on x86-64), mapped by a PTE leaf.
    Base,
    /// The huge page size (2MB on x86-64), mapped by a PMD leaf.
    Huge,
    /// The giant page size (1GB on x86-64), mapped by a PUD leaf.
    Giant,
}

impl PageSize {
    /// All page sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Base, PageSize::Huge, PageSize::Giant];

    /// All page sizes, largest first — the order in which Trident attempts
    /// to satisfy a page fault (1GB, then 2MB, then 4KB).
    pub const LARGEST_FIRST: [PageSize; 3] = [PageSize::Giant, PageSize::Huge, PageSize::Base];

    /// The next smaller page size, or `None` for [`PageSize::Base`].
    ///
    /// This is the fallback order used by Trident's fault handler when a
    /// contiguous physical chunk of the desired size is unavailable.
    ///
    /// # Examples
    ///
    /// ```
    /// use trident_types::PageSize;
    /// assert_eq!(PageSize::Giant.smaller(), Some(PageSize::Huge));
    /// assert_eq!(PageSize::Base.smaller(), None);
    /// ```
    #[must_use]
    pub fn smaller(self) -> Option<PageSize> {
        match self {
            PageSize::Giant => Some(PageSize::Huge),
            PageSize::Huge => Some(PageSize::Base),
            PageSize::Base => None,
        }
    }

    /// The next larger page size, or `None` for [`PageSize::Giant`].
    #[must_use]
    pub fn larger(self) -> Option<PageSize> {
        match self {
            PageSize::Base => Some(PageSize::Huge),
            PageSize::Huge => Some(PageSize::Giant),
            PageSize::Giant => None,
        }
    }

    /// Whether this is a large page (huge or giant), i.e. anything bigger
    /// than the base page size.
    #[must_use]
    pub fn is_large(self) -> bool {
        self != PageSize::Base
    }

    /// A short human-readable label using the real x86-64 sizes
    /// (`"4KB"`, `"2MB"`, `"1GB"`), as the paper's figures do.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PageSize::Base => "4KB",
            PageSize::Huge => "2MB",
            PageSize::Giant => "1GB",
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_size() {
        assert!(PageSize::Base < PageSize::Huge);
        assert!(PageSize::Huge < PageSize::Giant);
    }

    #[test]
    fn smaller_and_larger_are_inverses() {
        for size in PageSize::ALL {
            if let Some(s) = size.smaller() {
                assert_eq!(s.larger(), Some(size));
            }
            if let Some(l) = size.larger() {
                assert_eq!(l.smaller(), Some(size));
            }
        }
    }

    #[test]
    fn largest_first_is_reverse_of_all() {
        let mut rev = PageSize::ALL;
        rev.reverse();
        assert_eq!(rev, PageSize::LARGEST_FIRST);
    }

    #[test]
    fn only_base_is_not_large() {
        assert!(!PageSize::Base.is_large());
        assert!(PageSize::Huge.is_large());
        assert!(PageSize::Giant.is_large());
    }

    #[test]
    fn display_uses_paper_labels() {
        assert_eq!(PageSize::Base.to_string(), "4KB");
        assert_eq!(PageSize::Huge.to_string(), "2MB");
        assert_eq!(PageSize::Giant.to_string(), "1GB");
    }
}
