//! Rung indices into a geometry's page-size ladder.

/// The maximum number of size classes (rungs) any [`PageGeometry`]
/// ladder can carry.
///
/// Six covers every shipped architecture with headroom: x86-64 has 3
/// rungs, RISC-V Sv48 with SVNAPOT has 4, AArch64 with contiguous-bit
/// coalescing at both the PTE and PMD level has 5.
///
/// [`PageGeometry`]: crate::PageGeometry
pub const MAX_RUNGS: usize = 6;

/// One rung of a geometry's page-size ladder.
///
/// A `PageSize` is an *index* into the ordered ladder of
/// [`SizeClass`](crate::SizeClass)es carried by a
/// [`PageGeometry`](crate::PageGeometry) — it no longer names a fixed
/// x86-64 size. Rung 0 is always the base page; higher rungs are
/// strictly larger, so the derived `Ord` still expresses "at least as
/// big as" within one geometry. Everything *about* a rung (its buddy
/// order, byte size, page-table level, NAPOT/contiguous encoding,
/// label) lives on the geometry; a bare `PageSize` is only meaningful
/// next to the geometry it indexes.
///
/// # Examples
///
/// ```
/// use trident_types::{PageGeometry, PageSize};
///
/// let geo = PageGeometry::X86_64;
/// let rungs: Vec<PageSize> = geo.rungs().collect();
/// assert_eq!(rungs.len(), 3);
/// assert_eq!(rungs[0], PageSize::BASE);
/// assert!(geo.largest() > PageSize::BASE);
/// assert_eq!(geo.label(geo.largest()), "1GB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageSize(u8);

impl PageSize {
    /// The base rung — rung 0 of every ladder.
    pub const BASE: PageSize = PageSize(0);

    /// The rung at `index`. Validity against a concrete ladder is the
    /// geometry's business; this only checks the universal bound.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_RUNGS`.
    #[must_use]
    pub const fn new(index: usize) -> PageSize {
        assert!(index < MAX_RUNGS, "rung index out of range");
        PageSize(index as u8)
    }

    /// This rung's index into its geometry's ladder (and into every
    /// per-rung counter array, which are all `[_; MAX_RUNGS]`).
    #[must_use]
    pub const fn rung(self) -> usize {
        self.0 as usize
    }

    /// The next smaller rung, or `None` for the base rung.
    ///
    /// This is the fallback order used by Trident's fault handler when a
    /// contiguous physical chunk of the desired size is unavailable.
    #[must_use]
    pub const fn smaller(self) -> Option<PageSize> {
        match self.0 {
            0 => None,
            n => Some(PageSize(n - 1)),
        }
    }

    /// Whether this is the base rung.
    #[must_use]
    pub const fn is_base(self) -> bool {
        self.0 == 0
    }

    /// Whether this is a large rung, i.e. anything bigger than the base
    /// page size.
    #[must_use]
    pub const fn is_large(self) -> bool {
        self.0 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_indices_round_trip() {
        for i in 0..MAX_RUNGS {
            assert_eq!(PageSize::new(i).rung(), i);
        }
    }

    #[test]
    fn ordering_follows_rung_index() {
        assert!(PageSize::new(0) < PageSize::new(1));
        assert!(PageSize::new(1) < PageSize::new(2));
    }

    #[test]
    fn smaller_steps_down_to_base() {
        assert_eq!(PageSize::new(2).smaller(), Some(PageSize::new(1)));
        assert_eq!(PageSize::new(1).smaller(), Some(PageSize::BASE));
        assert_eq!(PageSize::BASE.smaller(), None);
    }

    #[test]
    fn only_base_is_not_large() {
        assert!(!PageSize::BASE.is_large());
        assert!(PageSize::BASE.is_base());
        assert!(PageSize::new(1).is_large());
        assert!(PageSize::new(2).is_large());
    }

    #[test]
    #[should_panic(expected = "rung index out of range")]
    fn rejects_out_of_range_rungs() {
        let _ = PageSize::new(MAX_RUNGS);
    }
}
