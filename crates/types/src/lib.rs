//! Shared vocabulary types for the Trident memory-system simulator.
//!
//! This crate defines the page-size ladder vocabulary ([`PageSize`] rung
//! indices and [`SizeClass`] descriptors), the per-architecture address-space
//! geometry ([`PageGeometry`]) and the strongly-typed address and identifier
//! newtypes used by every other crate in the workspace.
//!
//! A geometry carries an ordered ladder of size classes: x86-64's
//! 4KB / 2MB / 1GB, RISC-V Sv48's 4-rung ladder with a 64KB SVNAPOT page,
//! or AArch64's contiguous-bit hint rungs. Every layer above iterates the
//! ladder instead of matching on fixed sizes, and unit tests can run the
//! same algorithms on a miniature geometry ([`PageGeometry::TINY`]).
//!
//! # Examples
//!
//! ```
//! use trident_types::{PageGeometry, PageSize};
//!
//! let geo = PageGeometry::X86_64;
//! let rungs: Vec<PageSize> = geo.rungs().collect();
//! assert_eq!(geo.bytes(rungs[0]), 4 * 1024);
//! assert_eq!(geo.bytes(rungs[1]), 2 * 1024 * 1024);
//! assert_eq!(geo.bytes(rungs[2]), 1024 * 1024 * 1024);
//! assert_eq!(geo.base_pages(geo.largest()), 262_144);
//!
//! let sv48 = PageGeometry::by_name("sv48").unwrap();
//! assert_eq!(sv48.rung_count(), 4);
//! assert!(sv48.class(PageSize::new(1)).napot); // the 64KB SVNAPOT rung
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod addr;
mod bitset;
mod error;
mod geometry;
mod ids;
mod invariant;
mod page_size;
mod units;

pub use addr::{Pfn, PhysAddr, VirtAddr, Vpn};
pub use bitset::DenseBitSet;
pub use error::{AllocError, TridentError};
pub use geometry::{PageGeometry, SizeClass};
pub use ids::{AsId, TenantId};
pub use invariant::{violations_message, InvariantViolation};
pub use page_size::{PageSize, MAX_RUNGS};
pub use units::{GIB, KIB, MIB};
