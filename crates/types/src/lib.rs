//! Shared vocabulary types for the Trident memory-system simulator.
//!
//! This crate defines the page-size taxonomy ([`PageSize`]), the configurable
//! address-space geometry ([`PageGeometry`]) and the strongly-typed address
//! and identifier newtypes used by every other crate in the workspace.
//!
//! The geometry is configurable so that unit and property tests can exercise
//! the same algorithms on a miniature address space (tiny huge/giant orders)
//! while experiments run with the real x86-64 layout (4KB / 2MB / 1GB).
//!
//! # Examples
//!
//! ```
//! use trident_types::{PageGeometry, PageSize};
//!
//! let geo = PageGeometry::X86_64;
//! assert_eq!(geo.bytes(PageSize::Base), 4 * 1024);
//! assert_eq!(geo.bytes(PageSize::Huge), 2 * 1024 * 1024);
//! assert_eq!(geo.bytes(PageSize::Giant), 1024 * 1024 * 1024);
//! assert_eq!(geo.base_pages(PageSize::Giant), 262_144);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod addr;
mod bitset;
mod error;
mod geometry;
mod ids;
mod invariant;
mod page_size;
mod units;

pub use addr::{Pfn, PhysAddr, VirtAddr, Vpn};
pub use bitset::DenseBitSet;
pub use error::{AllocError, TridentError};
pub use geometry::PageGeometry;
pub use ids::{AsId, TenantId};
pub use invariant::{violations_message, InvariantViolation};
pub use page_size::PageSize;
pub use units::{GIB, KIB, MIB};
