//! Structured cross-layer invariant violations.
//!
//! The consistency checks in `trident-phys` and `trident-core` historically
//! panicked on the first broken invariant, which is the right behavior for
//! unit tests but useless for chaos runs that want to *count and report*
//! corruption instead of aborting. [`InvariantViolation`] is the structured
//! currency of the non-panicking `check_*` audit APIs: each variant names
//! one broken invariant with enough context to locate it, and the legacy
//! `assert_*` entry points are thin wrappers that panic with the collected
//! list.

use crate::{AsId, Pfn, Vpn};

/// One broken cross-layer invariant, found by a `check_*` audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// A buddy free block's start is not aligned to its own length.
    BuddyBlockMisaligned {
        /// First page of the block.
        start: u64,
        /// Block length in base pages.
        pages: u64,
    },
    /// A buddy free block extends past the end of physical memory.
    BuddyBlockOutOfBounds {
        /// First page of the block.
        start: u64,
        /// Block length in base pages.
        pages: u64,
        /// Total pages managed by the allocator.
        total_pages: u64,
    },
    /// Two buddy free blocks overlap.
    BuddyBlocksOverlap {
        /// First page of the earlier block.
        first: u64,
        /// First page of the later, overlapping block.
        second: u64,
    },
    /// The buddy allocator's cached free-page count disagrees with the sum
    /// of its free lists.
    BuddyFreeCountDrift {
        /// Pages counted by walking the free lists.
        counted: u64,
        /// Pages recorded in the cached counter.
        recorded: u64,
    },
    /// The buddy allocator and the region map disagree on free pages.
    FreeCountMismatch {
        /// Free pages according to the buddy allocator.
        buddy_free: u64,
        /// Free pages according to the region map.
        region_free: u64,
    },
    /// A page-table leaf points at a frame that is not a unit head.
    LeafNotUnitHead {
        /// Owning address space.
        asid: AsId,
        /// Leaf virtual page.
        vpn: Vpn,
        /// The dangling frame.
        pfn: Pfn,
    },
    /// A leaf's mapped size disagrees with the backing unit's span.
    UnitSpanMismatch {
        /// Owning address space.
        asid: AsId,
        /// Leaf virtual page.
        vpn: Vpn,
        /// Pages spanned by the physical unit.
        unit_pages: u64,
        /// Pages implied by the leaf's page size.
        leaf_pages: u64,
    },
    /// A mapped unit has no recorded owner.
    MissingOwner {
        /// Address space whose leaf references the unit.
        asid: AsId,
        /// Head frame of the ownerless unit.
        pfn: Pfn,
    },
    /// A unit's recorded owner disagrees with the leaf that maps it.
    OwnerMismatch {
        /// Address space whose leaf references the unit.
        asid: AsId,
        /// Head frame of the unit.
        pfn: Pfn,
        /// Virtual page recorded as the unit's owner.
        owner_vpn: Vpn,
        /// Virtual page of the leaf actually mapping the unit.
        leaf_vpn: Vpn,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::BuddyBlockMisaligned { start, pages } => {
                write!(f, "buddy free block at page {start} ({pages} pages) is misaligned")
            }
            InvariantViolation::BuddyBlockOutOfBounds {
                start,
                pages,
                total_pages,
            } => write!(
                f,
                "buddy free block at page {start} ({pages} pages) exceeds {total_pages} total pages"
            ),
            InvariantViolation::BuddyBlocksOverlap { first, second } => {
                write!(f, "buddy free blocks at pages {first} and {second} overlap")
            }
            InvariantViolation::BuddyFreeCountDrift { counted, recorded } => write!(
                f,
                "buddy free lists hold {counted} pages but the counter says {recorded}"
            ),
            InvariantViolation::FreeCountMismatch {
                buddy_free,
                region_free,
            } => write!(
                f,
                "buddy reports {buddy_free} free pages but regions report {region_free}"
            ),
            InvariantViolation::LeafNotUnitHead { asid, vpn, pfn } => write!(
                f,
                "space {asid:?} leaf at {vpn:?} points at {pfn:?}, which is not a unit head"
            ),
            InvariantViolation::UnitSpanMismatch {
                asid,
                vpn,
                unit_pages,
                leaf_pages,
            } => write!(
                f,
                "space {asid:?} leaf at {vpn:?} maps {leaf_pages} pages over a {unit_pages}-page unit"
            ),
            InvariantViolation::MissingOwner { asid, pfn } => {
                write!(f, "unit at {pfn:?} mapped by space {asid:?} has no owner")
            }
            InvariantViolation::OwnerMismatch {
                asid,
                pfn,
                owner_vpn,
                leaf_vpn,
            } => write!(
                f,
                "unit at {pfn:?} records owner {owner_vpn:?} but space {asid:?} maps it at {leaf_vpn:?}"
            ),
        }
    }
}

/// Renders a violation list as a panic message, one violation per line.
#[must_use]
pub fn violations_message(violations: &[InvariantViolation]) -> String {
    let mut out = format!("{} invariant violation(s):", violations.len());
    for v in violations {
        out.push_str("\n  - ");
        out.push_str(&v.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_message_lists_all() {
        let vs = [
            InvariantViolation::BuddyFreeCountDrift {
                counted: 1,
                recorded: 2,
            },
            InvariantViolation::FreeCountMismatch {
                buddy_free: 3,
                region_free: 4,
            },
        ];
        for v in &vs {
            assert!(!v.to_string().is_empty());
        }
        let msg = violations_message(&vs);
        assert!(msg.starts_with("2 invariant violation(s):"));
        assert_eq!(msg.lines().count(), 3);
    }
}
