//! Property-based tests for the geometry arithmetic.

use proptest::prelude::*;
use trident_types::{PageGeometry, PageSize};

fn any_geometry() -> impl Strategy<Value = PageGeometry> {
    (10u8..=13, 1u8..=10).prop_flat_map(|(base, huge)| {
        ((huge + 1)..=(huge + 12)).prop_map(move |giant| PageGeometry::new(base, huge, giant))
    })
}

fn any_size() -> impl Strategy<Value = PageSize> {
    prop_oneof![
        Just(PageSize::Base),
        Just(PageSize::Huge),
        Just(PageSize::Giant)
    ]
}

proptest! {
    #[test]
    fn align_down_is_aligned_and_le(geo in any_geometry(), size in any_size(),
                                    raw in 0u64..(1 << 48)) {
        let down = geo.align_down(raw, size);
        prop_assert!(geo.is_aligned(down, size));
        prop_assert!(down <= raw);
        prop_assert!(raw - down < geo.bytes(size));
    }

    #[test]
    fn align_up_is_aligned_and_ge(geo in any_geometry(), size in any_size(),
                                  raw in 0u64..(1 << 48)) {
        let up = geo.align_up(raw, size);
        prop_assert!(geo.is_aligned(up, size));
        prop_assert!(up >= raw);
        prop_assert!(up - raw < geo.bytes(size));
    }

    #[test]
    fn page_addr_roundtrips(geo in any_geometry(), page in 0u64..(1 << 36)) {
        prop_assert_eq!(geo.page_of(geo.page_addr(page)), page);
    }

    #[test]
    fn sizes_strictly_increase(geo in any_geometry()) {
        prop_assert!(geo.bytes(PageSize::Base) < geo.bytes(PageSize::Huge));
        prop_assert!(geo.bytes(PageSize::Huge) < geo.bytes(PageSize::Giant));
    }

    #[test]
    fn giant_region_contains_its_start(geo in any_geometry(), region in 0u64..(1 << 20)) {
        let start = geo.giant_region_start(region);
        prop_assert_eq!(geo.giant_region_of(start), region);
        prop_assert_eq!(
            geo.giant_region_of(start + geo.base_pages(PageSize::Giant) - 1),
            region
        );
    }

    #[test]
    fn bytes_equals_base_pages_times_base_bytes(geo in any_geometry(), size in any_size()) {
        prop_assert_eq!(geo.bytes(size), geo.base_pages(size) * geo.base_bytes());
    }
}
