//! Property-based tests for the geometry arithmetic, run over random
//! custom geometries and every shipped architecture ladder.

use proptest::prelude::*;
use trident_types::{PageGeometry, PageSize};

fn any_geometry() -> impl Strategy<Value = PageGeometry> {
    let custom = (10u8..=13, 1u8..=10).prop_flat_map(|(base, huge)| {
        ((huge + 1)..=(huge + 12)).prop_map(move |giant| PageGeometry::new(base, huge, giant))
    });
    prop_oneof![
        custom,
        Just(PageGeometry::X86_64),
        Just(PageGeometry::RISCV_SV48),
        Just(PageGeometry::AARCH64),
        Just(PageGeometry::TINY),
    ]
}

/// A (geometry, rung) pair where the rung is valid for the ladder.
fn geometry_and_size() -> impl Strategy<Value = (PageGeometry, PageSize)> {
    any_geometry()
        .prop_flat_map(|geo| (0..geo.rung_count()).prop_map(move |i| (geo, PageSize::new(i))))
}

proptest! {
    #[test]
    fn align_down_is_aligned_and_le((geo, size) in geometry_and_size(),
                                    raw in 0u64..(1 << 48)) {
        let down = geo.align_down(raw, size);
        prop_assert!(geo.is_aligned(down, size));
        prop_assert!(down <= raw);
        prop_assert!(raw - down < geo.bytes(size));
    }

    #[test]
    fn align_up_is_aligned_and_ge((geo, size) in geometry_and_size(),
                                  raw in 0u64..(1 << 48)) {
        let up = geo.align_up(raw, size);
        prop_assert!(geo.is_aligned(up, size));
        prop_assert!(up >= raw);
        prop_assert!(up - raw < geo.bytes(size));
    }

    #[test]
    fn page_addr_roundtrips(geo in any_geometry(), page in 0u64..(1 << 36)) {
        prop_assert_eq!(geo.page_of(geo.page_addr(page)), page);
    }

    #[test]
    fn ladder_sizes_strictly_increase(geo in any_geometry()) {
        let sizes: Vec<u64> = geo.rungs().map(|s| geo.bytes(s)).collect();
        for pair in sizes.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        prop_assert_eq!(sizes[0], geo.base_bytes());
        prop_assert_eq!(*sizes.last().unwrap(), geo.bytes(geo.largest()));
    }

    #[test]
    fn order_roundtrips_through_size_for_order((geo, size) in geometry_and_size()) {
        prop_assert_eq!(geo.size_for_order(geo.order(size)), Some(size));
    }

    #[test]
    fn off_ladder_orders_have_no_rung(geo in any_geometry(), order in 0u8..64) {
        let on_ladder = geo.rungs().any(|s| geo.order(s) == order);
        prop_assert_eq!(geo.size_for_order(order).is_some(), on_ladder);
    }

    #[test]
    fn larger_and_smaller_are_inverse((geo, size) in geometry_and_size()) {
        if let Some(up) = geo.larger(size) {
            prop_assert_eq!(up.smaller(), Some(size));
            prop_assert!(geo.bytes(up) > geo.bytes(size));
        } else {
            prop_assert_eq!(size, geo.largest());
        }
    }

    #[test]
    fn group_span_covers_the_rung((geo, size) in geometry_and_size()) {
        let class = geo.class(size);
        let level_span = 1u64 << geo.level_order(class.level);
        prop_assert_eq!(geo.group_span(size) * level_span, geo.base_pages(size));
        // Natural leaves span exactly one entry; hint rungs never exceed
        // their declared contiguous span.
        if !geo.is_group(size) {
            prop_assert_eq!(geo.group_span(size), 1);
        }
        if let Some(span) = class.contiguous_span {
            prop_assert_eq!(geo.group_span(size), u64::from(span));
        }
    }

    #[test]
    fn giant_region_contains_its_start(geo in any_geometry(), region in 0u64..(1 << 20)) {
        let start = geo.giant_region_start(region);
        prop_assert_eq!(geo.giant_region_of(start), region);
        prop_assert_eq!(
            geo.giant_region_of(start + geo.base_pages(geo.largest()) - 1),
            region
        );
    }

    #[test]
    fn bytes_equals_base_pages_times_base_bytes((geo, size) in geometry_and_size()) {
        prop_assert_eq!(geo.bytes(size), geo.base_pages(size) * geo.base_bytes());
    }

    #[test]
    fn scaling_preserves_ladder_invariants(geo in any_geometry(), shift in 0u8..=8) {
        let s = geo.scaled(shift);
        prop_assert_eq!(s.name(), geo.name());
        prop_assert_eq!(s.base_shift(), geo.base_shift());
        prop_assert!(s.rung_count() >= 3);
        prop_assert!(s.rung_count() <= geo.rung_count());
        let orders: Vec<u8> = s.rungs().map(|r| s.order(r)).collect();
        for pair in orders.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        for size in s.rungs() {
            prop_assert_eq!(s.size_for_order(s.order(size)), Some(size));
            prop_assert!(s.order(size) >= s.level_order(s.level(size)));
        }
    }
}
