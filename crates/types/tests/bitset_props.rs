//! Property-based tests for [`DenseBitSet`]: the packed-word set must be
//! indistinguishable from a sorted-`Vec` reference model under arbitrary
//! mutation sequences — including the drain API that feeds the promotion
//! daemon's dirty-chunk scan.

use proptest::prelude::*;
use trident_types::DenseBitSet;

/// One mutation against the set.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Clear,
    Drain,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        // The vendored proptest's `prop_oneof` is uniform; listing the
        // insert arm twice biases toward growth so drains see real sets.
        prop_oneof![
            (0u64..400).prop_map(Op::Insert),
            (0u64..400).prop_map(Op::Insert),
            (0u64..400).prop_map(Op::Remove),
            Just(Op::Clear),
            Just(Op::Drain),
        ],
        1..120,
    )
}

/// Applies `ops` to both the packed set and a sorted-Vec model, checking
/// agreement after every step (membership, length, iteration order, and
/// drain output).
fn check_against_model(ops: &[Op]) {
    let mut set = DenseBitSet::new();
    let mut model: Vec<u64> = Vec::new();
    let mut drained = Vec::new();
    for &op in ops {
        match op {
            Op::Insert(k) => {
                let fresh = set.insert(k);
                prop_assert_eq!(fresh, !model.contains(&k));
                if fresh {
                    let at = model.partition_point(|&m| m < k);
                    model.insert(at, k);
                }
            }
            Op::Remove(k) => {
                let had = set.remove(k);
                prop_assert_eq!(had, model.contains(&k));
                model.retain(|&m| m != k);
            }
            Op::Clear => {
                set.clear();
                model.clear();
            }
            Op::Drain => {
                drained.clear();
                set.drain_into(&mut drained);
                // Drain yields the model in ascending order and empties
                // the set, exactly like taking the reference Vec.
                prop_assert_eq!(&drained, &model);
                prop_assert!(set.is_empty());
                model.clear();
            }
        }
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), model.clone());
        prop_assert_eq!(set.first(), model.first().copied());
    }
}

proptest! {
    /// Forward order: packed set == Vec model after every mutation.
    #[test]
    fn bitset_matches_vec_model(ops in ops()) {
        check_against_model(&ops);
    }

    /// The same sequences replayed in reverse must also agree — the model
    /// equivalence cannot depend on insertion order.
    #[test]
    fn bitset_matches_vec_model_reversed(ops in ops()) {
        let reversed: Vec<Op> = ops.into_iter().rev().collect();
        check_against_model(&reversed);
    }

    /// `iter_range` agrees with filtering the full iteration, for every
    /// window — including windows that straddle word boundaries.
    #[test]
    fn iter_range_matches_filtered_iter(
        keys in prop::collection::vec(0u64..300, 0..80),
        start in 0u64..310,
        len in 0u64..310,
    ) {
        let set: DenseBitSet = keys.iter().copied().collect();
        let mut sorted = keys;
        sorted.sort_unstable();
        sorted.dedup();
        let end = start + len;
        let ranged: Vec<u64> = set.iter_range(start, end).collect();
        let filtered: Vec<u64> = sorted.into_iter().filter(|&k| k >= start && k < end).collect();
        prop_assert_eq!(ranged, filtered);
    }
}
