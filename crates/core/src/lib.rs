//! The Trident policy engine.
//!
//! This crate implements the paper's contribution (§5) and the systems it
//! is evaluated against:
//!
//! * [`TridentPolicy`] — application-transparent dynamic allocation of all
//!   three page sizes: the fault handler tries 1GB, falls back to 2MB, then
//!   4KB (§5.1.2); a `khugepaged`-style promoter walks address spaces and
//!   upgrades mappings per the Figure 5 flowchart (§5.1.3); *smart
//!   compaction* selects — rather than scans for — source and target 1GB
//!   regions using per-region occupancy counters (Figure 6); and an
//!   asynchronous zero-fill pool turns 400ms 1GB faults into 2.7ms ones.
//! * [`ThpPolicy`] — Linux's Transparent Huge Pages: aggressive 2MB faults,
//!   `khugepaged` promotion, sequential-scan ("normal") compaction.
//! * [`HugetlbfsPolicy`] — static pre-reservation of one large page size,
//!   unable to back stacks, failing under fragmentation.
//! * [`HawkEyePolicy`] — access-coverage-ordered 2MB promotion with
//!   `kbinmanager` CPU overhead and bloat recovery (ASPLOS'19 baseline).
//! * [`BasePolicy`] — 4KB pages only.
//!
//! Every policy implements [`PagePolicy`] and operates on a shared
//! [`MmContext`] (physical memory + cost model + statistics) and a
//! [`SpaceSet`] of process address spaces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod baselines;
mod compaction;
mod context;
mod cost;
mod fault;
mod invariants;
mod policy;
mod promote;
mod stats;
mod tenant;
mod trident;
mod zerofill;

pub use baselines::base::BasePolicy;
pub use baselines::hawkeye::HawkEyePolicy;
pub use baselines::hugetlbfs::HugetlbfsPolicy;
pub use baselines::ingens::IngensPolicy;
pub use baselines::thp::ThpPolicy;
pub use compaction::{CompactionKind, CompactionOutcome, Compactor};
pub use context::{MmContext, SpaceSet};
pub use cost::{CostModel, CostModelBuilder};
pub use fault::{map_chunk, touched_chunk, touched_chunk_reserved, FaultOutcome};
pub use invariants::{assert_mm_consistent, check_mm_consistent};
pub use policy::{PagePolicy, PolicyError, TickOutcome};
pub use promote::{
    demote_chunk, promote_chunk, recover_bloat, PromoteError, PromoteOutcome, PromotedChunk,
    Promoter, PromoterConfig, PromoterConfigBuilder, PromotionStyle,
};
pub use stats::{AllocSite, MmStats};
pub use tenant::{
    violation_asid, violations_by_tenant, PinnedRange, PolicyHint, TenantDirectory, TenantPolicy,
};
// Observability vocabulary, re-exported so policy consumers need not
// depend on `trident-obs` directly.
pub use trident::{TridentConfig, TridentPolicy};
// Fault-injection vocabulary, re-exported for the same reason.
pub use trident_fault::{FaultInjector, FaultPlan, FaultPlanBuilder, SiteRule};
pub use trident_obs::{
    Event, InjectSite, NoopRecorder, ObsRecorder, Recorder, RingTracer, SpanKind, StatsSnapshot,
    SNAPSHOT_VERSION,
};
pub use trident_types::{violations_message, InvariantViolation};
pub use zerofill::ZeroFillPool;
