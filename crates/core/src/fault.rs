//! Shared fault-path helpers.

use trident_phys::{FrameUse, MappingOwner, PhysMemError};
use trident_types::{PageSize, Pfn, Vpn};
use trident_vm::AddressSpace;

use crate::MmContext;

/// Result of servicing one page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The page size that ended up mapping the faulting address.
    pub size: PageSize,
    /// Fault latency in nanoseconds.
    pub latency_ns: u64,
    /// For 1GB faults: whether a pre-zeroed block was used.
    pub prepared: bool,
}

/// If the `size`-aligned chunk containing `vpn` lies entirely inside one
/// VMA and is currently completely unmapped, returns its head page.
///
/// This is THP's fault-time test generalized to any size: the faulting
/// address must fall "within a virtual address range that is at least as
/// big as and aligned with the large page size" (§2), and nothing in the
/// chunk may be mapped yet.
#[must_use]
pub fn touched_chunk(space: &AddressSpace, vpn: Vpn, size: PageSize) -> Option<Vpn> {
    let geo = space.geometry();
    let span = geo.base_pages(size);
    let head = Vpn::new(vpn.raw() / span * span);
    let vma = space.vma_containing(vpn)?;
    if head.raw() < vma.start.raw() || head.raw() + span > vma.end().raw() {
        return None;
    }
    let profile = space.page_table().chunk_profile(head, size);
    (profile.mapped_total() == 0).then_some(head)
}

/// Like [`touched_chunk`], but with reservation ("hugetlbfs") semantics:
/// the chunk only needs to *start* inside the faulting VMA and be fully
/// unmapped. `libHugetlbfs` rounds segments up to the page size, so a
/// reservation-backed page may extend past the segment end — the source
/// of hugetlbfs's memory bloat (§7 notes Btree's 1GB-Hugetlbfs win comes
/// "at the cost of bloating memory footprint").
#[must_use]
pub fn touched_chunk_reserved(space: &AddressSpace, vpn: Vpn, size: PageSize) -> Option<Vpn> {
    let geo = space.geometry();
    let span = geo.base_pages(size);
    let head = Vpn::new(vpn.raw() / span * span);
    let vma = space.vma_containing(vpn)?;
    if head.raw() + span <= vma.start.raw() {
        return None;
    }
    let profile = space.page_table().chunk_profile(head, size);
    (profile.mapped_total() == 0).then_some(head)
}

/// Allocates a frame of `size` and maps it at `head_vpn` with the
/// reverse-map owner registered. For giant pages, tries the pre-zeroed pool
/// first; returns whether a prepared block was used.
///
/// Under a fault plan with an active [`Alloc`](trident_obs::InjectSite::Alloc)
/// rule, a large-page allocation can fail by injection before reaching the
/// allocator; base-page allocations are the last-resort path every fallback
/// chain ends in and are never injected.
///
/// # Errors
///
/// Propagates [`PhysMemError`] when no contiguous chunk exists — the signal
/// to fall back to a smaller size.
pub fn map_chunk(
    ctx: &mut MmContext,
    space: &mut AddressSpace,
    head_vpn: Vpn,
    size: PageSize,
) -> Result<(Pfn, bool), PhysMemError> {
    if size != PageSize::BASE && ctx.inject(trident_obs::InjectSite::Alloc) {
        return Err(PhysMemError::OutOfContiguousMemory(
            trident_types::AllocError {
                order: ctx.geometry().order(size),
            },
        ));
    }
    let owner = MappingOwner {
        asid: space.id(),
        vpn: head_vpn,
    };
    // The zero-fill pool prepares blocks of the ladder's top rung only.
    let (pfn, prepared) = if size == ctx.geometry().largest() {
        match ctx.zero_pool.take_prepared_rec(
            &mut ctx.mem,
            FrameUse::User,
            Some(owner),
            &mut ctx.recorder,
        ) {
            Some(pfn) => (pfn, true),
            None => (
                ctx.mem
                    .allocate_rec(size, FrameUse::User, Some(owner), &mut ctx.recorder)?,
                false,
            ),
        }
    } else {
        (
            ctx.mem
                .allocate_rec(size, FrameUse::User, Some(owner), &mut ctx.recorder)?,
            false,
        )
    };
    space
        .page_table_mut()
        .map(head_vpn, pfn, size)
        .expect("chunk was verified unmapped and aligned");
    Ok((pfn, prepared))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::PhysicalMemory;
    use trident_types::{AsId, PageGeometry};
    use trident_vm::VmaKind;

    fn setup() -> (MmContext, AddressSpace) {
        let geo = PageGeometry::TINY;
        let ctx = MmContext::new(PhysicalMemory::new(
            geo,
            8 * geo.base_pages(PageSize::new(2)),
        ));
        (ctx, AddressSpace::new(AsId::new(1), geo))
    }

    #[test]
    fn touched_chunk_requires_full_containment() {
        let (_, mut space) = setup();
        // VMA of 100 pages starting at page 4: giant chunk [0,64) sticks
        // out at the front, [64,128) sticks out at the back.
        space.mmap_at(Vpn::new(4), 100, VmaKind::Anon).unwrap();
        assert_eq!(touched_chunk(&space, Vpn::new(10), PageSize::new(2)), None);
        assert_eq!(
            touched_chunk(&space, Vpn::new(10), PageSize::new(1)),
            Some(Vpn::new(8))
        );
        // A VMA covering two full giant chunks qualifies.
        let mut s2 = AddressSpace::new(AsId::new(2), PageGeometry::TINY);
        s2.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
        assert_eq!(
            touched_chunk(&s2, Vpn::new(70), PageSize::new(2)),
            Some(Vpn::new(64))
        );
    }

    #[test]
    fn touched_chunk_rejects_partially_mapped_chunks() {
        let (mut ctx, mut space) = setup();
        space.mmap_at(Vpn::new(0), 64, VmaKind::Anon).unwrap();
        map_chunk(&mut ctx, &mut space, Vpn::new(0), PageSize::BASE).unwrap();
        assert_eq!(touched_chunk(&space, Vpn::new(9), PageSize::new(2)), None);
        // But a fresh huge chunk inside is fine.
        assert_eq!(
            touched_chunk(&space, Vpn::new(9), PageSize::new(1)),
            Some(Vpn::new(8))
        );
    }

    #[test]
    fn touched_chunk_outside_any_vma_is_none() {
        let (_, space) = setup();
        assert_eq!(touched_chunk(&space, Vpn::new(5), PageSize::BASE), None);
    }

    #[test]
    fn map_chunk_registers_owner_and_prefers_prepared() {
        let (mut ctx, mut space) = setup();
        space.mmap_at(Vpn::new(0), 64, VmaKind::Anon).unwrap();
        ctx.zero_pool.tick(&ctx.mem, &ctx.cost.clone(), 1);
        let (pfn, prepared) =
            map_chunk(&mut ctx, &mut space, Vpn::new(0), PageSize::new(2)).unwrap();
        assert!(prepared);
        let owner = ctx.mem.unit_at(pfn).unwrap().owner.unwrap();
        assert_eq!(owner.asid, AsId::new(1));
        assert_eq!(owner.vpn, Vpn::new(0));
        assert!(space.page_table().translate(Vpn::new(3)).is_some());
    }

    #[test]
    fn map_chunk_without_prepared_blocks_is_unprepared() {
        let (mut ctx, mut space) = setup();
        space.mmap_at(Vpn::new(0), 64, VmaKind::Anon).unwrap();
        let (_, prepared) = map_chunk(&mut ctx, &mut space, Vpn::new(0), PageSize::new(2)).unwrap();
        assert!(!prepared);
    }
}
