//! Multi-tenant vocabulary: who owns each address space, how the shared
//! daemons share their attention, and what placement guidance a tenant
//! may supply.
//!
//! One physical pool + buddy allocator serves N tenants; the engine keys
//! every address space to a [`TenantId`] through the [`TenantDirectory`]
//! carried by [`MmContext`](crate::MmContext). The directory also holds
//! each tenant's fairness weight, its per-tick promotion-budget override
//! and its [`PolicyHint`] — the eBPF-mm-style userspace guidance surface
//! the promoter consults in `scan_space`.
//!
//! An empty directory means "legacy single-tenant machine": every
//! scheduling decision degenerates to the pre-multi-tenant behaviour bit
//! for bit.

use std::collections::BTreeMap;

use trident_types::{AsId, InvariantViolation, PageSize, TenantId, Vpn};

/// A pinned hot virtual range: `pages` base pages starting at `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinnedRange {
    /// First page of the range.
    pub start: Vpn,
    /// Length in base pages.
    pub pages: u64,
}

impl PinnedRange {
    /// Whether the chunk `[head, head + span)` overlaps this range.
    #[must_use]
    pub fn covers(&self, head: Vpn, span: u64) -> bool {
        let (a, b) = (self.start.raw(), self.start.raw() + self.pages);
        let (c, d) = (head.raw(), head.raw() + span);
        a < d && c < b
    }
}

/// Placement and promotion guidance one tenant supplies to the shared
/// daemons (the paper's co-location extension; eBPF-mm's hint surface).
///
/// Hints never grant capacity — they only reorder or decline work the
/// promoter would do anyway, inside the tenant's fairness budget.
///
/// # Examples
///
/// ```
/// use trident_core::PolicyHint;
/// use trident_types::{PageSize, Vpn};
///
/// let hint = PolicyHint::new()
///     .pin(Vpn::new(0), 4096)
///     .prefer(PageSize::new(1));
/// assert!(hint.pins(Vpn::new(1024), 64));
/// assert!(!hint.pins(Vpn::new(8192), 64));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyHint {
    /// Hot ranges the tenant wants promoted first.
    pub pinned: Vec<PinnedRange>,
    /// The one large page size the tenant wants (e.g. a latency-sensitive
    /// tenant declining 1GB promotion copies). `None` = all sizes.
    pub preferred_size: Option<PageSize>,
    /// The tenant declines background promotion entirely.
    pub promotion_opt_out: bool,
}

impl PolicyHint {
    /// No guidance: the promoter behaves exactly as without hints.
    #[must_use]
    pub fn new() -> PolicyHint {
        PolicyHint::default()
    }

    /// Adds a pinned hot range.
    #[must_use]
    pub fn pin(mut self, start: Vpn, pages: u64) -> PolicyHint {
        self.pinned.push(PinnedRange { start, pages });
        self
    }

    /// Restricts promotion to `size`.
    #[must_use]
    pub fn prefer(mut self, size: PageSize) -> PolicyHint {
        self.preferred_size = Some(size);
        self
    }

    /// Declines background promotion entirely.
    #[must_use]
    pub fn opt_out(mut self) -> PolicyHint {
        self.promotion_opt_out = true;
        self
    }

    /// Whether the chunk `[head, head + span)` overlaps any pinned range.
    #[must_use]
    pub fn pins(&self, head: Vpn, span: u64) -> bool {
        self.pinned.iter().any(|r| r.covers(head, span))
    }

    /// Whether this hint changes anything at all.
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.pinned.is_empty() && self.preferred_size.is_none() && !self.promotion_opt_out
    }
}

/// One tenant's registration with the shared memory-management engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPolicy {
    /// The tenant this registration belongs to.
    pub tenant: TenantId,
    /// Weighted-round-robin share of the promotion daemon's attention
    /// (each round the tenant's spaces are scanned `weight` times).
    /// Clamped to at least 1.
    pub weight: u32,
    /// Per-tick promotion-budget override; `None` = the promoter's own
    /// `chunk_budget`.
    pub chunk_budget: Option<usize>,
    /// The tenant's guidance.
    pub hint: PolicyHint,
}

impl TenantPolicy {
    /// A neutral registration: weight 1, engine-default budget, no hints.
    #[must_use]
    pub fn new(tenant: TenantId) -> TenantPolicy {
        TenantPolicy {
            tenant,
            weight: 1,
            chunk_budget: None,
            hint: PolicyHint::new(),
        }
    }

    /// Sets the fairness weight (clamped to ≥ 1 at consultation time).
    #[must_use]
    pub fn weight(mut self, weight: u32) -> TenantPolicy {
        self.weight = weight;
        self
    }

    /// Overrides the per-tick promotion budget.
    #[must_use]
    pub fn chunk_budget(mut self, budget: usize) -> TenantPolicy {
        self.chunk_budget = Some(budget);
        self
    }

    /// Installs the tenant's guidance.
    #[must_use]
    pub fn hint(mut self, hint: PolicyHint) -> TenantPolicy {
        self.hint = hint;
        self
    }
}

/// The engine's map from address space to owning tenant, with each
/// tenant's scheduling parameters. Empty in legacy single-tenant runs.
///
/// # Examples
///
/// ```
/// use trident_core::{TenantDirectory, TenantPolicy};
/// use trident_types::{AsId, TenantId};
///
/// let mut dir = TenantDirectory::new();
/// dir.register(AsId::new(1), TenantPolicy::new(TenantId::new(0)).weight(2));
/// assert_eq!(dir.tenant_of(AsId::new(1)), Some(TenantId::new(0)));
/// assert_eq!(dir.weight(AsId::new(1)), 2);
/// assert_eq!(dir.weight(AsId::new(9)), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TenantDirectory {
    map: BTreeMap<AsId, TenantPolicy>,
}

impl TenantDirectory {
    /// An empty directory (legacy single-tenant behaviour).
    #[must_use]
    pub fn new() -> TenantDirectory {
        TenantDirectory::default()
    }

    /// Registers (or replaces) the tenant owning `asid`.
    pub fn register(&mut self, asid: AsId, policy: TenantPolicy) {
        self.map.insert(asid, policy);
    }

    /// The registration for `asid`, if any.
    #[must_use]
    pub fn policy(&self, asid: AsId) -> Option<&TenantPolicy> {
        self.map.get(&asid)
    }

    /// The tenant owning `asid`, if registered.
    #[must_use]
    pub fn tenant_of(&self, asid: AsId) -> Option<TenantId> {
        self.map.get(&asid).map(|p| p.tenant)
    }

    /// The fairness weight for `asid` (1 for unregistered spaces).
    #[must_use]
    pub fn weight(&self, asid: AsId) -> u32 {
        self.map.get(&asid).map_or(1, |p| p.weight.max(1))
    }

    /// Whether no tenant is registered (legacy single-tenant machine).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of registered address spaces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Distinct registered tenants, in id order.
    #[must_use]
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut out: Vec<TenantId> = self.map.values().map(|p| p.tenant).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Iterates registrations in address-space order.
    pub fn iter(&self) -> impl Iterator<Item = (AsId, &TenantPolicy)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }
}

/// Buckets audit violations by owning tenant, in tenant order.
/// Violations in spaces no tenant owns land under `None` — in a
/// co-location cell those are engine bugs, not tenant bugs.
#[must_use]
pub fn violations_by_tenant(
    dir: &TenantDirectory,
    violations: &[InvariantViolation],
) -> Vec<(Option<TenantId>, u64)> {
    let mut counts: BTreeMap<Option<TenantId>, u64> = BTreeMap::new();
    for v in violations {
        let tenant = violation_asid(v).and_then(|asid| dir.tenant_of(asid));
        *counts.entry(tenant).or_default() += 1;
    }
    counts.into_iter().collect()
}

/// The address space a violation names, when it names one (machine-wide
/// buddy/region violations name none).
#[must_use]
pub fn violation_asid(v: &InvariantViolation) -> Option<AsId> {
    match *v {
        InvariantViolation::LeafNotUnitHead { asid, .. }
        | InvariantViolation::UnitSpanMismatch { asid, .. }
        | InvariantViolation::MissingOwner { asid, .. }
        | InvariantViolation::OwnerMismatch { asid, .. } => Some(asid),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_types::Pfn;

    #[test]
    fn pinning_covers_overlaps_only() {
        let hint = PolicyHint::new().pin(Vpn::new(100), 50);
        assert!(hint.pins(Vpn::new(120), 8));
        assert!(hint.pins(Vpn::new(96), 8), "straddles the start");
        assert!(!hint.pins(Vpn::new(150), 8), "half-open end");
        assert!(!hint.pins(Vpn::new(0), 100), "half-open start");
        assert!(PolicyHint::new().is_neutral());
        assert!(!hint.is_neutral());
    }

    #[test]
    fn directory_defaults_are_legacy_neutral() {
        let dir = TenantDirectory::new();
        assert!(dir.is_empty());
        assert_eq!(dir.weight(AsId::new(1)), 1);
        assert_eq!(dir.tenant_of(AsId::new(1)), None);
        assert!(dir.tenants().is_empty());
    }

    #[test]
    fn directory_round_trips_and_clamps_weight() {
        let mut dir = TenantDirectory::new();
        dir.register(AsId::new(1), TenantPolicy::new(TenantId::new(0)).weight(0));
        dir.register(
            AsId::new(2),
            TenantPolicy::new(TenantId::new(1))
                .weight(3)
                .chunk_budget(4)
                .hint(PolicyHint::new().opt_out()),
        );
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.weight(AsId::new(1)), 1, "zero weight clamps to 1");
        assert_eq!(dir.weight(AsId::new(2)), 3);
        assert_eq!(dir.policy(AsId::new(2)).unwrap().chunk_budget, Some(4));
        assert!(dir.policy(AsId::new(2)).unwrap().hint.promotion_opt_out);
        assert_eq!(dir.tenants(), vec![TenantId::new(0), TenantId::new(1)]);
    }

    #[test]
    fn violations_bucket_by_owning_tenant() {
        let mut dir = TenantDirectory::new();
        dir.register(AsId::new(1), TenantPolicy::new(TenantId::new(0)));
        dir.register(AsId::new(2), TenantPolicy::new(TenantId::new(1)));
        let vs = [
            InvariantViolation::MissingOwner {
                asid: AsId::new(1),
                pfn: Pfn::new(0),
            },
            InvariantViolation::MissingOwner {
                asid: AsId::new(2),
                pfn: Pfn::new(1),
            },
            InvariantViolation::MissingOwner {
                asid: AsId::new(2),
                pfn: Pfn::new(2),
            },
            InvariantViolation::BuddyFreeCountDrift {
                counted: 0,
                recorded: 1,
            },
        ];
        let buckets = violations_by_tenant(&dir, &vs);
        assert_eq!(
            buckets,
            vec![
                (None, 1),
                (Some(TenantId::new(0)), 1),
                (Some(TenantId::new(1)), 2),
            ]
        );
    }
}
