//! Memory-management statistics.
//!
//! These counters are the raw material for the paper's Tables 3 and 4 and
//! Figure 7: pages mapped by size and mechanism, 1GB allocation failures at
//! fault versus promotion time, and bytes copied by compaction.

use trident_types::PageSize;

/// Where a large-page allocation was attempted, for Table 4's breakdown of
/// failure rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocSite {
    /// In the page-fault handler.
    PageFault,
    /// In the background promotion daemon.
    Promotion,
}

/// Counters accumulated by every policy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MmStats {
    /// Faults served, by page size.
    pub faults: [u64; 3],
    /// Nanoseconds spent in fault handling, by page size.
    pub fault_ns: [u64; 3],
    /// 1GB allocation attempts at fault time.
    pub giant_attempts_fault: u64,
    /// 1GB allocation failures at fault time (no contiguity).
    pub giant_failures_fault: u64,
    /// 1GB allocation attempts during promotion.
    pub giant_attempts_promo: u64,
    /// 1GB allocation failures during promotion, *after* compaction was
    /// given a chance.
    pub giant_failures_promo: u64,
    /// Promotions performed, by target page size.
    pub promotions: [u64; 3],
    /// Demotions performed (bloat recovery), by source page size.
    pub demotions: [u64; 3],
    /// Bytes copied by compaction (Figure 7's quantity).
    pub compaction_bytes_copied: u64,
    /// Bytes copied by promotion (copying small pages into the large one).
    pub promotion_bytes_copied: u64,
    /// Bytes whose copy was elided by Trident_pv mapping exchanges.
    pub pv_bytes_exchanged: u64,
    /// Compaction attempts / successes.
    pub compaction_attempts: u64,
    /// Compactions that produced the requested free chunk.
    pub compaction_successes: u64,
    /// Background-daemon CPU time (khugepaged + kbinmanager + zero-fill).
    pub daemon_ns: u64,
    /// Base pages mapped beyond what the application ever touched
    /// (internal-fragmentation bloat from aggressive promotion).
    pub bloat_pages: u64,
    /// Bloat pages recovered by demotion / zero-page dedup.
    pub bloat_recovered_pages: u64,
    /// Giant blocks zero-filled in the background.
    pub giant_blocks_prezeroed: u64,
}

impl MmStats {
    /// Records a fault outcome.
    pub fn record_fault(&mut self, size: PageSize, ns: u64) {
        self.faults[size as usize] += 1;
        self.fault_ns[size as usize] += ns;
    }

    /// Records a 1GB allocation attempt and whether it failed.
    pub fn record_giant_attempt(&mut self, site: AllocSite, failed: bool) {
        match site {
            AllocSite::PageFault => {
                self.giant_attempts_fault += 1;
                if failed {
                    self.giant_failures_fault += 1;
                }
            }
            AllocSite::Promotion => {
                self.giant_attempts_promo += 1;
                if failed {
                    self.giant_failures_promo += 1;
                }
            }
        }
    }

    /// 1GB allocation failure rate at `site`, or `None` if never attempted
    /// (the "NA" entries of Table 4).
    #[must_use]
    pub fn giant_failure_rate(&self, site: AllocSite) -> Option<f64> {
        let (attempts, failures) = match site {
            AllocSite::PageFault => (self.giant_attempts_fault, self.giant_failures_fault),
            AllocSite::Promotion => (self.giant_attempts_promo, self.giant_failures_promo),
        };
        (attempts > 0).then(|| failures as f64 / attempts as f64)
    }

    /// Total faults across sizes.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Total fault-handling time.
    #[must_use]
    pub fn total_fault_ns(&self) -> u64 {
        self.fault_ns.iter().sum()
    }

    /// Mean 1GB fault latency in nanoseconds, if any 1GB faults occurred.
    #[must_use]
    pub fn mean_giant_fault_ns(&self) -> Option<u64> {
        let n = self.faults[PageSize::Giant as usize];
        (n > 0).then(|| self.fault_ns[PageSize::Giant as usize] / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_recording_accumulates() {
        let mut s = MmStats::default();
        s.record_fault(PageSize::Giant, 400);
        s.record_fault(PageSize::Giant, 200);
        s.record_fault(PageSize::Base, 1);
        assert_eq!(s.total_faults(), 3);
        assert_eq!(s.total_fault_ns(), 601);
        assert_eq!(s.mean_giant_fault_ns(), Some(300));
    }

    #[test]
    fn failure_rate_is_na_without_attempts() {
        let s = MmStats::default();
        assert_eq!(s.giant_failure_rate(AllocSite::PageFault), None);
    }

    #[test]
    fn failure_rate_computes_per_site() {
        let mut s = MmStats::default();
        s.record_giant_attempt(AllocSite::PageFault, true);
        s.record_giant_attempt(AllocSite::PageFault, false);
        s.record_giant_attempt(AllocSite::Promotion, false);
        assert_eq!(s.giant_failure_rate(AllocSite::PageFault), Some(0.5));
        assert_eq!(s.giant_failure_rate(AllocSite::Promotion), Some(0.0));
    }
}
