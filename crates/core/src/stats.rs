//! Memory-management statistics.
//!
//! These counters are the raw material for the paper's Tables 3 and 4 and
//! Figure 7: pages mapped by size and mechanism, 1GB allocation failures at
//! fault versus promotion time, and bytes copied by compaction.
//!
//! Consumption goes through the versioned [`StatsSnapshot`] (from
//! `trident-obs`): call [`MmStats::snapshot`] and use its accessors —
//! it is the only read path. Production goes
//! through [`MmContext::record`](crate::MmContext::record), which folds a
//! typed [`Event`] into these counters *and* forwards it to the installed
//! recorder, so a complete trace always replays to the exact snapshot.

use trident_obs::{Event, StatsSnapshot};
use trident_types::{PageSize, MAX_RUNGS};

pub use trident_obs::AllocSite;

/// Counters accumulated by every policy.
///
/// Fields stay public for tests and merges, but the supported write path
/// is [`MmStats::apply`] (usually via
/// [`MmContext::record`](crate::MmContext::record)) and the supported read
/// path is [`MmStats::snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MmStats {
    /// Faults served, by page size.
    pub faults: [u64; MAX_RUNGS],
    /// Nanoseconds spent in fault handling, by page size.
    pub fault_ns: [u64; MAX_RUNGS],
    /// 1GB allocation attempts at fault time.
    pub giant_attempts_fault: u64,
    /// 1GB allocation failures at fault time (no contiguity).
    pub giant_failures_fault: u64,
    /// 1GB allocation attempts during promotion.
    pub giant_attempts_promo: u64,
    /// 1GB allocation failures during promotion, *after* compaction was
    /// given a chance.
    pub giant_failures_promo: u64,
    /// Promotions performed, by target page size.
    pub promotions: [u64; MAX_RUNGS],
    /// Demotions performed (bloat recovery), by source page size.
    pub demotions: [u64; MAX_RUNGS],
    /// Bytes copied by compaction (Figure 7's quantity).
    pub compaction_bytes_copied: u64,
    /// Bytes copied by promotion (copying small pages into the large one).
    pub promotion_bytes_copied: u64,
    /// Bytes whose copy was elided by Trident_pv mapping exchanges.
    pub pv_bytes_exchanged: u64,
    /// Compaction attempts / successes.
    pub compaction_attempts: u64,
    /// Compactions that produced the requested free chunk.
    pub compaction_successes: u64,
    /// Background-daemon CPU time (khugepaged + kbinmanager + zero-fill).
    pub daemon_ns: u64,
    /// Base pages mapped beyond what the application ever touched
    /// (internal-fragmentation bloat from aggressive promotion).
    pub bloat_pages: u64,
    /// Bloat pages recovered by demotion / zero-page dedup.
    pub bloat_recovered_pages: u64,
    /// Giant blocks zero-filled in the background.
    pub giant_blocks_prezeroed: u64,
    /// Faults injected by a deterministic fault plan, by
    /// [`InjectSite`](trident_obs::InjectSite) wire order.
    pub injected_faults: [u64; 5],
    /// Promotions deferred for a later re-arm tick.
    pub promotions_deferred: u64,
    /// Trident_pv exchanges that fell back to copying.
    pub pv_fallbacks: u64,
    /// Bytes copied by Trident_pv fallbacks instead of exchanged.
    pub pv_fallback_bytes: u64,
}

impl MmStats {
    /// Folds one event into the counters, mirroring
    /// [`StatsSnapshot::apply`] exactly (the trace-replay property test in
    /// `tests/` holds the two in lockstep). Trace-only events are ignored.
    pub fn apply(&mut self, event: &Event) {
        match *event {
            Event::Fault { size, ns, .. } => self.record_fault(size, ns),
            Event::GiantAttempt { site, failed } => self.record_giant_attempt(site, failed),
            Event::Promote {
                size,
                bytes_copied,
                bloat_pages,
            } => {
                self.promotions[size.rung()] += 1;
                self.promotion_bytes_copied += bytes_copied;
                self.bloat_pages += bloat_pages;
            }
            Event::Demote {
                size,
                recovered_pages,
            } => {
                self.demotions[size.rung()] += 1;
                self.bloat_recovered_pages += recovered_pages;
            }
            Event::PvExchange { bytes, .. } => self.pv_bytes_exchanged += bytes,
            Event::CompactionRun { succeeded, .. } => {
                self.compaction_attempts += 1;
                self.compaction_successes += u64::from(succeeded);
            }
            Event::CompactionMove { bytes } => self.compaction_bytes_copied += bytes,
            Event::ZeroFill { blocks } => self.giant_blocks_prezeroed += blocks,
            Event::DaemonTick { ns } => self.daemon_ns += ns,
            Event::FaultInjected { site } => self.injected_faults[site as usize] += 1,
            Event::PromotionDeferred { .. } => self.promotions_deferred += 1,
            Event::PvFallback { bytes } => {
                self.pv_fallbacks += 1;
                self.pv_fallback_bytes += bytes;
            }
            Event::BuddySplit { .. }
            | Event::BuddyCoalesce { .. }
            | Event::TlbMiss { .. }
            | Event::SpanBegin { .. }
            | Event::SpanEnd { .. }
            | Event::TraceGap { .. }
            | Event::Gauge { .. }
            | Event::TenantScope { .. } => {}
        }
    }

    /// The versioned aggregate snapshot — the consumption surface for
    /// experiments, reports and governors.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            faults: self.faults,
            fault_ns: self.fault_ns,
            giant_attempts_fault: self.giant_attempts_fault,
            giant_failures_fault: self.giant_failures_fault,
            giant_attempts_promo: self.giant_attempts_promo,
            giant_failures_promo: self.giant_failures_promo,
            promotions: self.promotions,
            demotions: self.demotions,
            compaction_bytes_copied: self.compaction_bytes_copied,
            promotion_bytes_copied: self.promotion_bytes_copied,
            pv_bytes_exchanged: self.pv_bytes_exchanged,
            compaction_attempts: self.compaction_attempts,
            compaction_successes: self.compaction_successes,
            daemon_ns: self.daemon_ns,
            bloat_pages: self.bloat_pages,
            bloat_recovered_pages: self.bloat_recovered_pages,
            giant_blocks_prezeroed: self.giant_blocks_prezeroed,
            injected_faults: self.injected_faults,
            promotions_deferred: self.promotions_deferred,
            pv_fallbacks: self.pv_fallbacks,
            pv_fallback_bytes: self.pv_fallback_bytes,
            ..StatsSnapshot::default()
        }
    }

    /// Records a fault outcome.
    pub fn record_fault(&mut self, size: PageSize, ns: u64) {
        self.faults[size.rung()] += 1;
        self.fault_ns[size.rung()] += ns;
    }

    /// Records a 1GB allocation attempt and whether it failed.
    pub fn record_giant_attempt(&mut self, site: AllocSite, failed: bool) {
        match site {
            AllocSite::PageFault => {
                self.giant_attempts_fault += 1;
                if failed {
                    self.giant_failures_fault += 1;
                }
            }
            AllocSite::Promotion => {
                self.giant_attempts_promo += 1;
                if failed {
                    self.giant_failures_promo += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_recording_accumulates() {
        let mut s = MmStats::default();
        s.record_fault(PageSize::new(2), 400);
        s.record_fault(PageSize::new(2), 200);
        s.record_fault(PageSize::BASE, 1);
        let snap = s.snapshot();
        assert_eq!(snap.total_faults(), 3);
        assert_eq!(snap.total_fault_ns(), 601);
        assert_eq!(snap.mean_fault_ns(PageSize::new(2)), Some(300));
    }

    #[test]
    fn failure_rate_is_na_without_attempts() {
        let s = MmStats::default();
        assert_eq!(s.snapshot().giant_failure_rate(AllocSite::PageFault), None);
    }

    #[test]
    fn failure_rate_computes_per_site() {
        let mut s = MmStats::default();
        s.record_giant_attempt(AllocSite::PageFault, true);
        s.record_giant_attempt(AllocSite::PageFault, false);
        s.record_giant_attempt(AllocSite::Promotion, false);
        let snap = s.snapshot();
        assert_eq!(snap.giant_failure_rate(AllocSite::PageFault), Some(0.5));
        assert_eq!(snap.giant_failure_rate(AllocSite::Promotion), Some(0.0));
    }

    #[test]
    fn snapshot_exposes_every_derived_accessor() {
        // Folded in from the old shim-agreement test: `snapshot()` is the
        // only read path, so the derived accessors are exercised against
        // counters accumulated through the write path.
        let mut s = MmStats::default();
        s.record_fault(PageSize::new(2), 100);
        s.record_giant_attempt(AllocSite::Promotion, true);
        let snap = s.snapshot();
        assert_eq!(snap.total_faults(), 1);
        assert_eq!(snap.total_fault_ns(), 100);
        assert_eq!(snap.mean_fault_ns(PageSize::new(2)), Some(100));
        assert_eq!(snap.giant_failure_rate(AllocSite::Promotion), Some(1.0));
        assert_eq!(snap.giant_failure_rate(AllocSite::PageFault), None);
    }

    #[test]
    fn apply_mirrors_snapshot_apply() {
        use trident_obs::StatsSnapshot;
        let events = [
            Event::Fault {
                size: PageSize::new(1),
                site: AllocSite::PageFault,
                ns: 40,
            },
            Event::Promote {
                size: PageSize::new(1),
                bytes_copied: 64,
                bloat_pages: 2,
            },
            Event::Demote {
                size: PageSize::new(1),
                recovered_pages: 2,
            },
            Event::CompactionRun {
                smart: false,
                succeeded: true,
            },
            Event::CompactionMove { bytes: 4096 },
            Event::PvExchange {
                pairs: 8,
                bytes: 1024,
                batched: true,
            },
            Event::ZeroFill { blocks: 1 },
            Event::DaemonTick { ns: 9 },
            Event::FaultInjected {
                site: trident_obs::InjectSite::Alloc,
            },
            Event::PromotionDeferred {
                size: PageSize::new(2),
            },
            Event::PvFallback { bytes: 2048 },
            Event::TlbMiss {
                size: PageSize::BASE,
                walk_cycles: 30,
            },
        ];
        let mut stats = MmStats::default();
        for ev in &events {
            stats.apply(ev);
        }
        assert_eq!(stats.snapshot(), StatsSnapshot::from_events(events.iter()));
    }
}
