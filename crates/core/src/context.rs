//! Shared mutable state the policies operate on.

use std::collections::BTreeMap;

use trident_fault::FaultInjector;
use trident_obs::{AllocSite, Event, InjectSite, ObsRecorder, Recorder, SpanKind, StatsSnapshot};
use trident_phys::PhysicalMemory;
use trident_types::{AsId, PageGeometry, PageSize, TenantId};
use trident_vm::AddressSpace;

use crate::{CostModel, MmStats, TenantDirectory, ZeroFillPool};

/// System-wide memory-management state: the physical memory, the async
/// zero-fill pool, the cost model, the event recorder and the statistics
/// every experiment reads.
#[derive(Debug, Clone)]
pub struct MmContext {
    /// The machine's physical memory.
    pub mem: PhysicalMemory,
    /// Pre-zeroed giant blocks maintained by the background thread.
    pub zero_pool: ZeroFillPool,
    /// Accumulated statistics.
    pub stats: MmStats,
    /// Latency constants.
    pub cost: CostModel,
    /// Event sink; [`ObsRecorder::Noop`] (free) unless tracing was
    /// requested. Borrowable disjointly from `mem`/`stats`, so hot paths
    /// can pass `&mut ctx.recorder` into `ctx.mem.allocate_rec(..)`.
    pub recorder: ObsRecorder,
    /// Deterministic fault injector; disabled (free) unless a fault plan
    /// was installed. Lives alongside the recorder so every failure-capable
    /// layer can consult it through [`MmContext::inject`].
    pub fault: FaultInjector,
    /// Who owns each address space; empty on single-tenant machines.
    pub tenants: TenantDirectory,
    /// Per-tenant counters, indexed densely by raw [`TenantId`]. Every
    /// event recorded while a scope is set folds into the pooled `stats`
    /// *and* the scoped tenant's row, so per-tenant rows always sum to the
    /// pooled totals.
    tenant_stats: Vec<MmStats>,
    /// The tenant currently being worked for, if attribution is on.
    scope: Option<TenantId>,
}

impl MmContext {
    /// Wraps a physical memory with default cost model, an empty
    /// zero-fill pool and the no-op recorder.
    #[must_use]
    pub fn new(mem: PhysicalMemory) -> MmContext {
        MmContext {
            mem,
            zero_pool: ZeroFillPool::new(8),
            stats: MmStats::default(),
            cost: CostModel::default(),
            recorder: ObsRecorder::default(),
            fault: FaultInjector::disabled(),
            tenants: TenantDirectory::new(),
            tenant_stats: Vec::new(),
            scope: None,
        }
    }

    /// Switches event attribution to `tenant` (or off with `None`). On a
    /// change to a live scope, a trace-only [`Event::TenantScope`] marker
    /// is emitted so traces stay attributable offline; the marker never
    /// touches counters, so single-tenant snapshots are unaffected.
    pub fn set_tenant_scope(&mut self, scope: Option<TenantId>) {
        if self.scope == scope {
            return;
        }
        self.scope = scope;
        if let Some(tenant) = scope {
            let idx = tenant.raw() as usize;
            if self.tenant_stats.len() <= idx {
                self.tenant_stats.resize_with(idx + 1, MmStats::default);
            }
            self.recorder.record(Event::TenantScope { tenant });
        }
    }

    /// The tenant currently being attributed, if any.
    #[must_use]
    pub fn tenant_scope(&self) -> Option<TenantId> {
        self.scope
    }

    /// The snapshot of one tenant's attributed counters (zeros for a
    /// tenant that never held the scope).
    #[must_use]
    pub fn tenant_snapshot(&self, tenant: TenantId) -> StatsSnapshot {
        self.tenant_stats
            .get(tenant.raw() as usize)
            .map_or_else(StatsSnapshot::default, MmStats::snapshot)
    }

    /// The page geometry of the underlying memory.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.mem.geometry()
    }

    /// Reports one event: folds it into [`MmStats`] and forwards it to the
    /// recorder. This is the single write path for every aggregate counter,
    /// which is what makes a complete trace replay to the exact snapshot.
    ///
    /// Under a fault plan with an active
    /// [`TraceRing`](InjectSite::TraceRing) rule, an event can be lost to
    /// simulated ring pressure: its counters stand, but the trace retains
    /// a [`Event::FaultInjected`] marker in its place and the loss is
    /// accounted via the tracer's dropped counter, keeping trace
    /// lossiness honest.
    pub fn record(&mut self, event: Event) {
        self.stats.apply(&event);
        self.apply_scoped(&event);
        if self.fault.enabled()
            && self.recorder.enabled()
            && self.fault.should_inject(InjectSite::TraceRing)
        {
            let marker = Event::FaultInjected {
                site: InjectSite::TraceRing,
            };
            self.stats.apply(&marker);
            self.apply_scoped(&marker);
            self.recorder.record(marker);
            if let Some(t) = self.recorder.tracer_mut() {
                t.note_dropped(1);
            }
            return;
        }
        self.recorder.record(event);
    }

    /// Folds `event` into the scoped tenant's row, when a scope is set.
    /// `set_tenant_scope` sizes the row vector, so the index always hits.
    fn apply_scoped(&mut self, event: &Event) {
        if let Some(tenant) = self.scope {
            self.tenant_stats[tenant.raw() as usize].apply(event);
        }
    }

    /// Consults the fault injector at `site`. When the plan fires, records
    /// an [`Event::FaultInjected`] and returns `true`; the caller then
    /// fails the operation the site names (and degrades gracefully).
    pub fn inject(&mut self, site: InjectSite) -> bool {
        if self.fault.enabled() && self.fault.should_inject(site) {
            self.record(Event::FaultInjected { site });
            true
        } else {
            false
        }
    }

    /// Records a served fault ([`Event::Fault`] at the page-fault site),
    /// bracketed by a [`SpanKind::Fault`] span whose duration is the
    /// modeled handler latency.
    pub fn record_fault(&mut self, size: PageSize, ns: u64) {
        self.recorder.record(Event::SpanBegin {
            kind: SpanKind::Fault,
        });
        self.record(Event::Fault {
            size,
            site: AllocSite::PageFault,
            ns,
        });
        self.recorder.record(Event::SpanEnd {
            kind: SpanKind::Fault,
            ns,
        });
    }

    /// Emits a span begin directly to the recorder (spans are trace-only;
    /// they never touch [`MmStats`]).
    pub fn span_begin(&mut self, kind: SpanKind) {
        self.recorder.record(Event::SpanBegin { kind });
    }

    /// Emits the matching span end with the span's modeled duration.
    pub fn span_end(&mut self, kind: SpanKind, ns: u64) {
        self.recorder.record(Event::SpanEnd { kind, ns });
    }

    /// Records a 1GB allocation attempt ([`Event::GiantAttempt`]).
    pub fn record_giant_attempt(&mut self, site: AllocSite, failed: bool) {
        self.record(Event::GiantAttempt { site, failed });
    }

    /// The versioned aggregate snapshot of this context's counters.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }
}

/// The set of simulated process address spaces, keyed by [`AsId`].
///
/// Compaction needs mutable access to *any* space (it follows reverse-map
/// owners to fix page tables), while fault handling works on one; this
/// container provides both access patterns.
///
/// # Examples
///
/// ```
/// use trident_core::SpaceSet;
/// use trident_types::{AsId, PageGeometry};
/// use trident_vm::AddressSpace;
///
/// let mut spaces = SpaceSet::new();
/// spaces.insert(AddressSpace::new(AsId::new(1), PageGeometry::TINY));
/// assert!(spaces.get(AsId::new(1)).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpaceSet {
    spaces: BTreeMap<AsId, AddressSpace>,
}

impl SpaceSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> SpaceSet {
        SpaceSet::default()
    }

    /// Adds (or replaces) a space, keyed by its own id.
    pub fn insert(&mut self, space: AddressSpace) {
        self.spaces.insert(space.id(), space);
    }

    /// Removes and returns a space.
    pub fn remove(&mut self, id: AsId) -> Option<AddressSpace> {
        self.spaces.remove(&id)
    }

    /// Shared access to a space.
    #[must_use]
    pub fn get(&self, id: AsId) -> Option<&AddressSpace> {
        self.spaces.get(&id)
    }

    /// Mutable access to a space.
    pub fn get_mut(&mut self, id: AsId) -> Option<&mut AddressSpace> {
        self.spaces.get_mut(&id)
    }

    /// The ids present, in order.
    #[must_use]
    pub fn ids(&self) -> Vec<AsId> {
        self.spaces.keys().copied().collect()
    }

    /// Iterates spaces in id order.
    pub fn iter(&self) -> impl Iterator<Item = &AddressSpace> {
        self.spaces.values()
    }

    /// Iterates spaces mutably in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut AddressSpace> {
        self.spaces.values_mut()
    }

    /// Number of spaces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_types::PageSize;

    #[test]
    fn space_set_round_trips() {
        let geo = PageGeometry::TINY;
        let mut set = SpaceSet::new();
        set.insert(AddressSpace::new(AsId::new(2), geo));
        set.insert(AddressSpace::new(AsId::new(1), geo));
        assert_eq!(set.len(), 2);
        assert_eq!(set.ids(), vec![AsId::new(1), AsId::new(2)]);
        assert!(set.get_mut(AsId::new(2)).is_some());
        assert!(set.remove(AsId::new(1)).is_some());
        assert!(set.get(AsId::new(1)).is_none());
        assert!(!set.is_empty());
    }

    #[test]
    fn context_exposes_geometry() {
        let geo = PageGeometry::TINY;
        let ctx = MmContext::new(PhysicalMemory::new(
            geo,
            4 * geo.base_pages(PageSize::new(2)),
        ));
        assert_eq!(ctx.geometry(), geo);
        assert_eq!(ctx.snapshot().total_faults(), 0);
    }

    #[test]
    fn tenant_scope_attributes_and_sums_to_pooled() {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(
            geo,
            4 * geo.base_pages(PageSize::new(2)),
        ));
        ctx.recorder = ObsRecorder::ring(16);
        let (t0, t1) = (TenantId::new(0), TenantId::new(1));
        ctx.set_tenant_scope(Some(t0));
        ctx.record_fault(PageSize::new(1), 100);
        ctx.set_tenant_scope(Some(t1));
        ctx.record_fault(PageSize::BASE, 10);
        ctx.record_fault(PageSize::BASE, 10);
        // Same-scope re-set emits no duplicate marker.
        ctx.set_tenant_scope(Some(t1));

        assert_eq!(ctx.tenant_scope(), Some(t1));
        assert_eq!(ctx.tenant_snapshot(t0).total_faults(), 1);
        assert_eq!(ctx.tenant_snapshot(t1).total_faults(), 2);
        // A tenant that never held the scope reads as zeros.
        assert_eq!(ctx.tenant_snapshot(TenantId::new(7)).total_faults(), 0);
        assert_eq!(
            ctx.tenant_snapshot(t0).total_fault_ns() + ctx.tenant_snapshot(t1).total_fault_ns(),
            ctx.snapshot().total_fault_ns()
        );
        // Scope markers are trace-only: one per transition, none counted.
        let markers = ctx
            .recorder
            .tracer()
            .unwrap()
            .events()
            .filter(|e| matches!(e, Event::TenantScope { .. }))
            .count();
        assert_eq!(markers, 2);
    }

    #[test]
    fn record_updates_stats_and_recorder_in_lockstep() {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(
            geo,
            4 * geo.base_pages(PageSize::new(2)),
        ));
        ctx.recorder = ObsRecorder::ring(16);
        ctx.record_fault(PageSize::new(1), 250);
        ctx.record_giant_attempt(AllocSite::PageFault, true);
        let trace: Vec<Event> = ctx.recorder.tracer().unwrap().events().copied().collect();
        // The fault is bracketed by trace-only span events.
        assert_eq!(trace.len(), 4);
        assert!(matches!(trace[0], Event::SpanBegin { .. }));
        assert!(matches!(trace[2], Event::SpanEnd { .. }));
        assert_eq!(ctx.snapshot(), StatsSnapshot::from_events(trace.iter()));
    }
}
