//! Asynchronous zero-fill of free giant blocks (§5.1.2).
//!
//! A synchronous 1GB page fault takes ≈400ms, almost entirely spent
//! zero-filling the new page (zeroing is required so leftover data cannot
//! leak between processes). Trident instead runs a kernel thread that
//! zero-fills free 1GB regions in the background; a fault that finds a
//! pre-zeroed region completes in ≈2.7ms. The paper reports this cut the
//! boot of a 70GB VM from 25s to 13s.

use std::collections::BTreeSet;

use trident_obs::{NoopRecorder, Recorder};
use trident_phys::{FrameUse, MappingOwner, PhysicalMemory};
use trident_types::Pfn;

use crate::CostModel;

/// The background zero-fill pool: start frames of free giant blocks whose
/// contents are already zero.
///
/// Handles are validated lazily: a block that was allocated or split since
/// it was prepared is silently discarded when the pool is asked for it.
#[derive(Debug, Clone)]
pub struct ZeroFillPool {
    prepared: BTreeSet<u64>,
    max_prepared: usize,
}

impl ZeroFillPool {
    /// Creates a pool that keeps at most `max_prepared` blocks zeroed ahead
    /// of demand.
    #[must_use]
    pub fn new(max_prepared: usize) -> ZeroFillPool {
        ZeroFillPool {
            prepared: BTreeSet::new(),
            max_prepared,
        }
    }

    /// Number of blocks currently believed prepared (may include stale
    /// handles that will be discarded on take).
    #[must_use]
    pub fn prepared_blocks(&self) -> usize {
        self.prepared.len()
    }

    /// One background-thread pass: zero-fill up to `budget` free giant
    /// blocks that are not yet prepared. Returns the thread's CPU time in
    /// nanoseconds and the number of blocks zeroed.
    pub fn tick(&mut self, mem: &PhysicalMemory, cost: &CostModel, budget: usize) -> (u64, u64) {
        let geo = mem.geometry();
        let top = geo.largest();
        let order = geo.order(top);
        let mut zeroed = 0u64;
        let room = self.max_prepared.saturating_sub(self.prepared.len());
        for start in mem.buddy().free_blocks_iter(order) {
            if zeroed as usize >= budget.min(room) {
                break;
            }
            if self.prepared.insert(start) {
                zeroed += 1;
            }
        }
        (cost.zero_ns(geo.bytes(top)) * zeroed, zeroed)
    }

    /// Takes one prepared giant block and allocates it, returning its head
    /// frame. Stale handles are dropped along the way. Returns `None` if no
    /// prepared block survives validation.
    pub fn take_prepared(
        &mut self,
        mem: &mut PhysicalMemory,
        use_: FrameUse,
        owner: Option<MappingOwner>,
    ) -> Option<Pfn> {
        self.take_prepared_rec(mem, use_, owner, &mut NoopRecorder)
    }

    /// [`take_prepared`](Self::take_prepared), reporting buddy events of
    /// the underlying allocation to `rec`.
    pub fn take_prepared_rec<R: Recorder>(
        &mut self,
        mem: &mut PhysicalMemory,
        use_: FrameUse,
        owner: Option<MappingOwner>,
        rec: &mut R,
    ) -> Option<Pfn> {
        let geo = mem.geometry();
        let order = geo.order(geo.largest());
        while let Some(start) = self.prepared.pop_first() {
            if !mem.buddy().is_block_free(start, order) {
                continue; // stale: the block was taken or split meanwhile
            }
            let region = geo.giant_region_of(start);
            let head = mem
                .allocate_in_region_rec(region, order, use_, owner, rec)
                .expect("validated free giant block is allocatable");
            debug_assert_eq!(head.raw(), start);
            return Some(head);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_types::{PageGeometry, PageSize};

    fn setup() -> (PhysicalMemory, ZeroFillPool, CostModel) {
        let geo = PageGeometry::TINY;
        (
            PhysicalMemory::new(geo, 4 * geo.base_pages(PageSize::new(2))),
            ZeroFillPool::new(2),
            CostModel::default(),
        )
    }

    #[test]
    fn tick_prepares_up_to_the_cap() {
        let (mem, mut pool, cost) = setup();
        let (ns, zeroed) = pool.tick(&mem, &cost, 10);
        assert_eq!(zeroed, 2); // capped by max_prepared
        assert!(ns > 0);
        assert_eq!(pool.prepared_blocks(), 2);
        // A second tick has nothing to do.
        let (_, again) = pool.tick(&mem, &cost, 10);
        assert_eq!(again, 0);
    }

    #[test]
    fn take_prepared_returns_a_real_block() {
        let (mut mem, mut pool, cost) = setup();
        pool.tick(&mem, &cost, 1);
        let head = pool
            .take_prepared(&mut mem, FrameUse::User, None)
            .expect("one block prepared");
        assert!(mem.is_unit_head(head));
        assert_eq!(pool.prepared_blocks(), 0);
    }

    #[test]
    fn stale_handles_are_discarded() {
        let (mut mem, mut pool, cost) = setup();
        pool.tick(&mem, &cost, 2);
        // Destroy the contiguity of every prepared block behind the pool's
        // back: allocate all giants, then a base page, then free giants.
        let g: Vec<_> = (0..4)
            .map(|_| {
                mem.allocate(PageSize::new(2), FrameUse::User, None)
                    .unwrap()
            })
            .collect();
        for h in &g[..2] {
            mem.free(*h).unwrap();
        }
        // Blocks 0 and 1 are free again, so handles are actually valid;
        // split block 0 by taking a base page from it.
        mem.allocate_in_region(0, 0, FrameUse::User, None).unwrap();
        let head = pool.take_prepared(&mut mem, FrameUse::User, None);
        // Handle for region 0 was stale; region 1's handle still works.
        assert_eq!(head.map(|h| h.raw()), Some(64));
        assert!(pool.take_prepared(&mut mem, FrameUse::User, None).is_none());
    }

    #[test]
    fn empty_pool_returns_none() {
        let (mut mem, mut pool, _) = setup();
        assert!(pool.take_prepared(&mut mem, FrameUse::User, None).is_none());
    }
}
