//! Cross-layer consistency checking (test and diagnostic aid).

use trident_types::PageSize;

use crate::{MmContext, SpaceSet};

/// Asserts that physical memory and every page table agree:
///
/// * every mapped leaf's head frame is the head of a live allocation unit
///   of exactly the leaf's span;
/// * the unit's reverse-map owner points back at the leaf.
///
/// # Panics
///
/// Panics with a descriptive message on the first violation.
pub fn assert_mm_consistent(ctx: &MmContext, spaces: &SpaceSet) {
    ctx.mem.assert_consistent();
    let geo = ctx.geometry();
    for space in spaces.iter() {
        for vma in space.vmas() {
            for leaf in space.page_table().mappings_in(vma.start, vma.pages) {
                let unit = ctx.mem.unit_at(leaf.pfn).unwrap_or_else(|| {
                    panic!(
                        "{}: leaf {} -> {} ({}) maps a frame that is not a live unit head",
                        space.id(),
                        leaf.vpn,
                        leaf.pfn,
                        leaf.size
                    )
                });
                assert_eq!(
                    unit.pages(),
                    geo.base_pages(leaf.size),
                    "{}: leaf {} ({}) backed by a unit of {} pages",
                    space.id(),
                    leaf.vpn,
                    leaf.size,
                    unit.pages()
                );
                let owner = unit.owner.unwrap_or_else(|| {
                    panic!("{}: unit {} has no reverse-map owner", space.id(), leaf.pfn)
                });
                assert_eq!(
                    owner.vpn,
                    leaf.vpn,
                    "{}: unit {} owner points at {} but leaf is {}",
                    space.id(),
                    leaf.pfn,
                    owner.vpn,
                    leaf.vpn
                );
            }
        }
    }
    let _ = PageSize::Base;
}
