//! Cross-layer consistency checking (test, chaos and diagnostic aid).

use trident_types::InvariantViolation;

use crate::{MmContext, SpaceSet};

/// Non-panicking audit that physical memory and every page table agree:
///
/// * physical memory's own invariants hold (buddy alignment, bounds,
///   overlap and free-count agreement — see
///   [`PhysicalMemory::check_consistent`](trident_phys::PhysicalMemory::check_consistent));
/// * every mapped leaf's head frame is the head of a live allocation unit
///   of exactly the leaf's span;
/// * the unit's reverse-map owner points back at the leaf.
///
/// Collects *every* violation rather than stopping at the first, so chaos
/// runs can report the full damage of an injected fault.
///
/// # Errors
///
/// The collected [`InvariantViolation`]s, if any invariant is broken.
pub fn check_mm_consistent(
    ctx: &MmContext,
    spaces: &SpaceSet,
) -> Result<(), Vec<InvariantViolation>> {
    let mut violations = match ctx.mem.check_consistent() {
        Ok(()) => Vec::new(),
        Err(v) => v,
    };
    let geo = ctx.geometry();
    for space in spaces.iter() {
        let asid = space.id();
        for vma in space.vmas() {
            for leaf in space.page_table().mappings_in(vma.start, vma.pages) {
                let Some(unit) = ctx.mem.unit_at(leaf.pfn) else {
                    violations.push(InvariantViolation::LeafNotUnitHead {
                        asid,
                        vpn: leaf.vpn,
                        pfn: leaf.pfn,
                    });
                    continue;
                };
                if unit.pages() != geo.base_pages(leaf.size) {
                    violations.push(InvariantViolation::UnitSpanMismatch {
                        asid,
                        vpn: leaf.vpn,
                        unit_pages: unit.pages(),
                        leaf_pages: geo.base_pages(leaf.size),
                    });
                }
                match unit.owner {
                    None => violations.push(InvariantViolation::MissingOwner {
                        asid,
                        pfn: leaf.pfn,
                    }),
                    Some(owner) if owner.vpn != leaf.vpn => {
                        violations.push(InvariantViolation::OwnerMismatch {
                            asid,
                            pfn: leaf.pfn,
                            owner_vpn: owner.vpn,
                            leaf_vpn: leaf.vpn,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Thin panicking wrapper over [`check_mm_consistent`], for tests and
/// debug builds.
///
/// # Panics
///
/// Panics with a message listing every violation found.
pub fn assert_mm_consistent(ctx: &MmContext, spaces: &SpaceSet) {
    if let Err(violations) = check_mm_consistent(ctx, spaces) {
        panic!("{}", trident_types::violations_message(&violations));
    }
}
