//! The Trident policy (§5): transparent dynamic allocation of all page
//! sizes.

use trident_obs::{Event, SpanKind};
use trident_types::{PageSize, Vpn};
use trident_vm::AddressSpace;

use crate::{
    map_chunk, recover_bloat, touched_chunk, AllocSite, CompactionKind, FaultOutcome, MmContext,
    PagePolicy, PolicyError, PromotedChunk, Promoter, PromoterConfig, PromotionStyle, SpaceSet,
    TickOutcome,
};

/// Free-memory fraction below which bloat recovery kicks in (when
/// enabled).
const PRESSURE_WATERMARK: f64 = 0.08;

/// Configuration knobs covering Trident and its ablations (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TridentConfig {
    /// Allow 2MB pages. `false` gives *Trident-1Gonly*, the ablation that
    /// shows why all large page sizes must be used together.
    pub use_huge: bool,
    /// Compaction algorithm. [`CompactionKind::Normal`] gives
    /// *Trident-NC*, the ablation isolating smart compaction's value.
    pub compaction: CompactionKind,
    /// How promotions move data; the guest side of Trident_pv switches
    /// this to a pv style.
    pub style: PromotionStyle,
    /// Recover bloat via HawkEye-style demotion (§7 "Memory bloat").
    pub bloat_recovery: bool,
    /// Giant blocks the background thread zero-fills per tick.
    pub zero_block_budget: usize,
    /// Promotions attempted per daemon tick.
    pub chunk_budget: usize,
}

impl TridentConfig {
    /// Full Trident: all sizes, smart compaction, copy-based promotion.
    #[must_use]
    pub fn full() -> TridentConfig {
        TridentConfig {
            use_huge: true,
            compaction: CompactionKind::Smart,
            style: PromotionStyle::Copy,
            bloat_recovery: false,
            zero_block_budget: 4,
            chunk_budget: 16,
        }
    }

    /// The *Trident-1Gonly* ablation: 2MB pages disallowed.
    #[must_use]
    pub fn giant_only() -> TridentConfig {
        TridentConfig {
            use_huge: false,
            ..TridentConfig::full()
        }
    }

    /// The *Trident-NC* ablation: normal (sequential-scan) compaction.
    #[must_use]
    pub fn normal_compaction() -> TridentConfig {
        TridentConfig {
            compaction: CompactionKind::Normal,
            ..TridentConfig::full()
        }
    }

    /// Guest-side Trident_pv: batched copy-less promotion.
    #[must_use]
    pub fn paravirt() -> TridentConfig {
        TridentConfig {
            style: PromotionStyle::PvBatched,
            ..TridentConfig::full()
        }
    }
}

impl Default for TridentConfig {
    fn default() -> Self {
        TridentConfig::full()
    }
}

/// The Trident policy: 1GB first, then 2MB, then 4KB, at fault time and via
/// background promotion with smart compaction and async zero-fill.
///
/// # Examples
///
/// ```
/// use trident_core::{MmContext, PagePolicy, TridentConfig, TridentPolicy};
/// use trident_phys::PhysicalMemory;
/// use trident_types::{AsId, PageGeometry, PageSize, Vpn};
/// use trident_vm::{AddressSpace, VmaKind};
///
/// let geo = PageGeometry::TINY;
/// let mut ctx = MmContext::new(PhysicalMemory::new(geo, 8 * geo.base_pages(PageSize::new(2))));
/// let mut space = AddressSpace::new(AsId::new(1), geo);
/// space.mmap_at(Vpn::new(0), 64, VmaKind::Anon)?;
/// let mut trident = TridentPolicy::new(TridentConfig::full());
/// let outcome = trident.on_fault(&mut ctx, &mut space, Vpn::new(20))?;
/// assert_eq!(outcome.size, PageSize::new(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TridentPolicy {
    config: TridentConfig,
    promoter: Promoter,
    /// Keeps a free giant chunk in stock for the fault handler (§5's
    /// "steady supply of free contiguous 1GB chunks").
    stock_compactor: crate::Compactor,
    /// Ticks since the stocking compactor last ran; it runs periodically,
    /// not every tick — replenishing contiguity is background work that
    /// must not crowd out promotion.
    ticks_since_stock: u32,
    promoted: Vec<PromotedChunk>,
}

impl TridentPolicy {
    /// Creates the policy from a configuration.
    #[must_use]
    pub fn new(config: TridentConfig) -> TridentPolicy {
        TridentPolicy {
            config,
            stock_compactor: crate::Compactor::new(config.compaction),
            ticks_since_stock: 0,
            promoter: Promoter::new(PromoterConfig {
                use_giant: true,
                use_huge: config.use_huge,
                compaction: config.compaction,
                style: config.style,
                chunk_budget: config.chunk_budget,
                order_by_access: false,
            }),
            promoted: Vec::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> TridentConfig {
        self.config
    }
}

impl Default for TridentPolicy {
    fn default() -> Self {
        TridentPolicy::new(TridentConfig::full())
    }
}

impl PagePolicy for TridentPolicy {
    fn name(&self) -> String {
        match (
            self.config.use_huge,
            self.config.compaction,
            self.config.style,
        ) {
            (false, _, _) => "Trident-1Gonly".to_owned(),
            (true, CompactionKind::Normal, _) => "Trident-NC".to_owned(),
            (true, _, PromotionStyle::Copy) => "Trident".to_owned(),
            (true, _, _) => "Trident-pv".to_owned(),
        }
    }

    /// §5.1.2: try 1GB (preferring a pre-zeroed block), then 2MB, then
    /// 4KB.
    fn on_fault(
        &mut self,
        ctx: &mut MmContext,
        space: &mut AddressSpace,
        vpn: Vpn,
    ) -> Result<FaultOutcome, PolicyError> {
        if space.vma_containing(vpn).is_none() {
            return Err(PolicyError::BadAddress(vpn));
        }
        if let Some(head) = touched_chunk(space, vpn, PageSize::new(2)) {
            match map_chunk(ctx, space, head, PageSize::new(2)) {
                Ok((_, prepared)) => {
                    ctx.record_giant_attempt(AllocSite::PageFault, false);
                    let latency = ctx
                        .cost
                        .fault_ns(&ctx.geometry(), PageSize::new(2), prepared);
                    ctx.record_fault(PageSize::new(2), latency);
                    return Ok(FaultOutcome {
                        size: PageSize::new(2),
                        latency_ns: latency,
                        prepared,
                    });
                }
                Err(_) => {
                    ctx.record_giant_attempt(AllocSite::PageFault, true);
                }
            }
        }
        if self.config.use_huge {
            if let Some(head) = touched_chunk(space, vpn, PageSize::new(1)) {
                if map_chunk(ctx, space, head, PageSize::new(1)).is_ok() {
                    let latency = ctx.cost.fault_ns(&ctx.geometry(), PageSize::new(1), false);
                    ctx.record_fault(PageSize::new(1), latency);
                    return Ok(FaultOutcome {
                        size: PageSize::new(1),
                        latency_ns: latency,
                        prepared: false,
                    });
                }
            }
        }
        map_chunk(ctx, space, vpn, PageSize::BASE)?;
        let latency = ctx.cost.fault_base_ns;
        ctx.record_fault(PageSize::BASE, latency);
        Ok(FaultOutcome {
            size: PageSize::BASE,
            latency_ns: latency,
            prepared: false,
        })
    }

    /// Background work: async zero-fill, Figure 5 promotion, optional
    /// bloat recovery.
    fn on_tick(&mut self, ctx: &mut MmContext, spaces: &mut SpaceSet) -> TickOutcome {
        let mut out = TickOutcome::default();
        let cost = ctx.cost;
        ctx.span_begin(SpanKind::ZeroFill);
        let (zero_ns, zeroed) = ctx
            .zero_pool
            .tick(&ctx.mem, &cost, self.config.zero_block_budget);
        if zeroed > 0 {
            ctx.record(Event::ZeroFill { blocks: zeroed });
        }
        ctx.span_end(SpanKind::ZeroFill, zero_ns);
        out.daemon_ns += zero_ns;

        let (tick, promoted) = self.promoter.tick(ctx, spaces);
        out.absorb(tick);
        self.promoted.extend(promoted);

        // Keep a free giant chunk in stock so the *fault handler* can
        // occasionally win a 1GB allocation even under fragmentation; the
        // zero-fill thread will pre-zero it next tick. Runs periodically.
        self.ticks_since_stock += 1;
        if self.ticks_since_stock >= 8 && !ctx.mem.has_free(PageSize::new(2)) {
            self.ticks_since_stock = 0;
            let c = self.stock_compactor.compact(ctx, spaces, PageSize::new(2));
            out.daemon_ns += c.ns;
            out.compaction_runs += 1;
        }

        if self.config.bloat_recovery && ctx.mem.free_fraction() < PRESSURE_WATERMARK {
            out.absorb(recover_bloat(
                ctx,
                spaces,
                &mut self.promoted,
                PRESSURE_WATERMARK,
            ));
        }
        ctx.record(Event::DaemonTick { ns: out.daemon_ns });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::{FrameUse, PhysicalMemory};
    use trident_types::{AsId, PageGeometry};
    use trident_vm::VmaKind;

    fn setup(regions: u64) -> (MmContext, SpaceSet) {
        let geo = PageGeometry::TINY;
        let ctx = MmContext::new(PhysicalMemory::new(
            geo,
            regions * geo.base_pages(PageSize::new(2)),
        ));
        let mut spaces = SpaceSet::new();
        spaces.insert(AddressSpace::new(AsId::new(1), geo));
        (ctx, spaces)
    }

    #[test]
    fn fault_prefers_prepared_giant_blocks() {
        let (mut ctx, mut spaces) = setup(4);
        let mut policy = TridentPolicy::default();
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            space.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
        }
        // First fault: no prepared blocks -> synchronous 400ms path.
        let space = spaces.get_mut(AsId::new(1)).unwrap();
        let slow = policy.on_fault(&mut ctx, space, Vpn::new(0)).unwrap();
        assert_eq!(slow.size, PageSize::new(2));
        assert!(!slow.prepared);
        assert_eq!(
            slow.latency_ns,
            ctx.cost.fault_ns(&ctx.geometry(), PageSize::new(2), false)
        );
        // Let the zero-fill thread run, then fault the second chunk.
        policy.on_tick(&mut ctx, &mut spaces);
        let space = spaces.get_mut(AsId::new(1)).unwrap();
        let fast = policy.on_fault(&mut ctx, space, Vpn::new(64)).unwrap();
        assert!(fast.prepared);
        assert_eq!(
            fast.latency_ns,
            ctx.cost.fault_ns(&ctx.geometry(), PageSize::new(2), true)
        );
        assert!(fast.latency_ns < slow.latency_ns / 100);
    }

    #[test]
    fn fault_falls_back_giant_to_huge_to_base() {
        let (mut ctx, mut spaces) = setup(2);
        // Break all giant chunks but leave huge chunks.
        ctx.mem
            .allocate_in_region(0, 0, FrameUse::Kernel, None)
            .unwrap();
        ctx.mem
            .allocate_in_region(1, 0, FrameUse::Kernel, None)
            .unwrap();
        let mut policy = TridentPolicy::default();
        let space = spaces.get_mut(AsId::new(1)).unwrap();
        space.mmap_at(Vpn::new(0), 64, VmaKind::Anon).unwrap();
        let out = policy.on_fault(&mut ctx, space, Vpn::new(9)).unwrap();
        assert_eq!(out.size, PageSize::new(1));
        assert_eq!(ctx.stats.giant_failures_fault, 1);
        // Now exhaust huge chunks too; remaining faults are 4KB.
        while ctx.mem.has_free(PageSize::new(1)) {
            ctx.mem
                .allocate(PageSize::new(1), FrameUse::Kernel, None)
                .unwrap();
        }
        let out = policy.on_fault(&mut ctx, space, Vpn::new(20)).unwrap();
        assert_eq!(out.size, PageSize::BASE);
    }

    #[test]
    fn giant_only_ablation_skips_huge_pages() {
        let (mut ctx, mut spaces) = setup(2);
        ctx.mem
            .allocate_in_region(0, 0, FrameUse::Kernel, None)
            .unwrap();
        ctx.mem
            .allocate_in_region(1, 0, FrameUse::Kernel, None)
            .unwrap();
        let mut policy = TridentPolicy::new(TridentConfig::giant_only());
        assert_eq!(policy.name(), "Trident-1Gonly");
        let space = spaces.get_mut(AsId::new(1)).unwrap();
        space.mmap_at(Vpn::new(0), 64, VmaKind::Anon).unwrap();
        // Giant fails (fragmented), huge disallowed: 4KB it is.
        let out = policy.on_fault(&mut ctx, space, Vpn::new(9)).unwrap();
        assert_eq!(out.size, PageSize::BASE);
    }

    #[test]
    fn tick_promotes_and_prezeros() {
        let (mut ctx, mut spaces) = setup(8);
        let mut policy = TridentPolicy::default();
        {
            // Fault 4KB pages into an initially tiny VMA (too small even
            // for a huge chunk), then grow it so the chunk becomes
            // giant-mappable — the incremental-allocator pattern of Redis.
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            space.mmap_at(Vpn::new(0), 4, VmaKind::Anon).unwrap();
            for i in 0..4 {
                policy.on_fault(&mut ctx, space, Vpn::new(i)).unwrap();
            }
            space.mmap_at(Vpn::new(4), 124, VmaKind::Anon).unwrap();
        }
        let out = policy.on_tick(&mut ctx, &mut spaces);
        assert!(out.promotions >= 1);
        assert!(ctx.stats.giant_blocks_prezeroed >= 1);
        let space = spaces.get(AsId::new(1)).unwrap();
        assert!(space.page_table().mapped_pages(PageSize::new(2)) >= 1);
    }

    #[test]
    fn names_reflect_ablation_configs() {
        assert_eq!(TridentPolicy::new(TridentConfig::full()).name(), "Trident");
        assert_eq!(
            TridentPolicy::new(TridentConfig::normal_compaction()).name(),
            "Trident-NC"
        );
        assert_eq!(
            TridentPolicy::new(TridentConfig::paravirt()).name(),
            "Trident-pv"
        );
    }

    #[test]
    fn bloat_recovery_demotes_under_pressure() {
        let (mut ctx, mut spaces) = setup(4);
        let mut config = TridentConfig::full();
        config.bloat_recovery = true;
        let mut policy = TridentPolicy::new(config);
        {
            // Sparse touch then grow: promotion will create bloat.
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            space.mmap_at(Vpn::new(0), 4, VmaKind::Anon).unwrap();
            for i in 0..4 {
                policy.on_fault(&mut ctx, space, Vpn::new(i)).unwrap();
            }
            space.mmap_at(Vpn::new(4), 60, VmaKind::Anon).unwrap();
        }
        policy.on_tick(&mut ctx, &mut spaces);
        assert!(ctx.stats.bloat_pages > 0);
        // Create memory pressure by grabbing almost everything free.
        while ctx.mem.free_fraction() > 0.05 {
            if ctx.mem.allocate_order(0, FrameUse::Kernel, None).is_err() {
                break;
            }
        }
        policy.on_tick(&mut ctx, &mut spaces);
        assert!(ctx.stats.bloat_recovered_pages > 0);
    }
}
