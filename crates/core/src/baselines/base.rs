//! The 4KB-only baseline.

use trident_types::{PageSize, Vpn};
use trident_vm::AddressSpace;

use crate::{map_chunk, FaultOutcome, MmContext, PagePolicy, PolicyError};

/// Maps everything with base (4KB) pages — the first bar of Figures 1
/// and 2.
///
/// # Examples
///
/// ```
/// use trident_core::{BasePolicy, MmContext, PagePolicy};
/// use trident_phys::PhysicalMemory;
/// use trident_types::{AsId, PageGeometry, PageSize, Vpn};
/// use trident_vm::{AddressSpace, VmaKind};
///
/// let geo = PageGeometry::TINY;
/// let mut ctx = MmContext::new(PhysicalMemory::new(geo, 4 * geo.base_pages(PageSize::new(2))));
/// let mut space = AddressSpace::new(AsId::new(1), geo);
/// space.mmap_at(Vpn::new(0), 64, VmaKind::Anon)?;
/// let outcome = BasePolicy::new().on_fault(&mut ctx, &mut space, Vpn::new(5))?;
/// assert_eq!(outcome.size, PageSize::BASE);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BasePolicy;

impl BasePolicy {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> BasePolicy {
        BasePolicy
    }
}

impl PagePolicy for BasePolicy {
    fn name(&self) -> String {
        "4KB".to_owned()
    }

    fn on_fault(
        &mut self,
        ctx: &mut MmContext,
        space: &mut AddressSpace,
        vpn: Vpn,
    ) -> Result<FaultOutcome, PolicyError> {
        if space.vma_containing(vpn).is_none() {
            return Err(PolicyError::BadAddress(vpn));
        }
        map_chunk(ctx, space, vpn, PageSize::BASE)?;
        let latency = ctx.cost.fault_base_ns;
        ctx.record_fault(PageSize::BASE, latency);
        Ok(FaultOutcome {
            size: PageSize::BASE,
            latency_ns: latency,
            prepared: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::PhysicalMemory;
    use trident_types::{AsId, PageGeometry};
    use trident_vm::VmaKind;

    #[test]
    fn faults_outside_vmas_are_bad_addresses() {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, 64));
        let mut space = AddressSpace::new(AsId::new(1), geo);
        assert_eq!(
            BasePolicy::new().on_fault(&mut ctx, &mut space, Vpn::new(0)),
            Err(PolicyError::BadAddress(Vpn::new(0)))
        );
    }

    #[test]
    fn exhausted_memory_reports_oom() {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, 64));
        let mut space = AddressSpace::new(AsId::new(1), geo);
        space.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
        let mut policy = BasePolicy::new();
        for i in 0..64 {
            policy.on_fault(&mut ctx, &mut space, Vpn::new(i)).unwrap();
        }
        assert!(matches!(
            policy.on_fault(&mut ctx, &mut space, Vpn::new(64)),
            Err(PolicyError::OutOfContiguousMemory(_))
        ));
        assert_eq!(ctx.stats.faults[PageSize::BASE.rung()], 64);
    }
}
