//! The HawkEye baseline (ASPLOS 2019).
//!
//! HawkEye improves on THP by (a) promoting the address ranges with the
//! highest observed TLB-miss (access) frequency first, measured through
//! per-region access bins maintained by a `kbinmanager` kernel thread, and
//! (b) recovering memory bloat by demoting under-used huge pages and
//! deduplicating zero-filled pages. It manages 2MB pages only. The paper
//! notes its `kbinmanager` CPU overhead can make it *lose* to plain THP
//! for large-memory applications under fragmentation (§7).

use trident_obs::Event;
use trident_types::{PageSize, Vpn};
use trident_vm::AddressSpace;

use crate::{
    map_chunk, recover_bloat, touched_chunk, CompactionKind, FaultOutcome, MmContext, PagePolicy,
    PolicyError, PromotedChunk, Promoter, PromoterConfig, PromotionStyle, SpaceSet, TickOutcome,
};

/// Free-memory fraction below which bloat recovery kicks in.
const PRESSURE_WATERMARK: f64 = 0.08;

/// The HawkEye policy.
#[derive(Debug, Clone)]
pub struct HawkEyePolicy {
    promoter: Promoter,
    promoted: Vec<PromotedChunk>,
}

impl HawkEyePolicy {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> HawkEyePolicy {
        HawkEyePolicy {
            promoter: Promoter::new(PromoterConfig {
                use_giant: false,
                use_huge: true,
                compaction: CompactionKind::Normal,
                style: PromotionStyle::Copy,
                chunk_budget: 16,
                order_by_access: true,
            }),
            promoted: Vec::new(),
        }
    }

    /// Chunks promoted so far and still registered for bloat recovery.
    #[must_use]
    pub fn tracked_chunks(&self) -> usize {
        self.promoted.len()
    }
}

impl Default for HawkEyePolicy {
    fn default() -> Self {
        HawkEyePolicy::new()
    }
}

impl PagePolicy for HawkEyePolicy {
    fn name(&self) -> String {
        "HawkEye".to_owned()
    }

    /// Fault path is THP-like: aggressive 2MB when possible.
    fn on_fault(
        &mut self,
        ctx: &mut MmContext,
        space: &mut AddressSpace,
        vpn: Vpn,
    ) -> Result<FaultOutcome, PolicyError> {
        if space.vma_containing(vpn).is_none() {
            return Err(PolicyError::BadAddress(vpn));
        }
        if let Some(head) = touched_chunk(space, vpn, PageSize::new(1)) {
            // An injected allocation fault degrades to the 4KB path below;
            // without injection the has_free check makes map_chunk
            // infallible here.
            if ctx.mem.has_free(PageSize::new(1))
                && map_chunk(ctx, space, head, PageSize::new(1)).is_ok()
            {
                let latency = ctx.cost.fault_ns(&ctx.geometry(), PageSize::new(1), false);
                ctx.record_fault(PageSize::new(1), latency);
                return Ok(FaultOutcome {
                    size: PageSize::new(1),
                    latency_ns: latency,
                    prepared: false,
                });
            }
        }
        map_chunk(ctx, space, vpn, PageSize::BASE)?;
        let latency = ctx.cost.fault_base_ns;
        ctx.record_fault(PageSize::BASE, latency);
        Ok(FaultOutcome {
            size: PageSize::BASE,
            latency_ns: latency,
            prepared: false,
        })
    }

    fn on_tick(&mut self, ctx: &mut MmContext, spaces: &mut SpaceSet) -> TickOutcome {
        let mut out = TickOutcome::default();
        // kbinmanager: walk every space's PTEs to maintain access bins.
        // This is HawkEye's extra CPU tax relative to THP.
        let binned_pages: u64 = spaces.iter().map(|s| s.total_vma_pages()).sum();
        out.daemon_ns += 2 * binned_pages * ctx.cost.scan_page_ns;

        let (tick, promoted) = self.promoter.tick(ctx, spaces);
        out.absorb(tick);
        self.promoted.extend(promoted);

        // Bloat recovery under memory pressure.
        if ctx.mem.free_fraction() < PRESSURE_WATERMARK {
            out.absorb(recover_bloat(
                ctx,
                spaces,
                &mut self.promoted,
                PRESSURE_WATERMARK,
            ));
        }
        ctx.record(Event::DaemonTick { ns: out.daemon_ns });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::PhysicalMemory;
    use trident_types::{AsId, PageGeometry};
    use trident_vm::VmaKind;

    fn setup() -> (MmContext, SpaceSet) {
        let geo = PageGeometry::TINY;
        let ctx = MmContext::new(PhysicalMemory::new(
            geo,
            8 * geo.base_pages(PageSize::new(2)),
        ));
        let mut spaces = SpaceSet::new();
        spaces.insert(AddressSpace::new(AsId::new(1), geo));
        (ctx, spaces)
    }

    #[test]
    fn hawkeye_costs_more_daemon_time_than_thp() {
        let (mut ctx, mut spaces) = setup();
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            space.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
        }
        let mut hawkeye = HawkEyePolicy::new();
        let mut thp = crate::ThpPolicy::new();
        let h = hawkeye.on_tick(&mut ctx, &mut spaces);
        let t = thp.on_tick(&mut ctx, &mut spaces);
        assert!(h.daemon_ns > t.daemon_ns);
    }

    #[test]
    fn promotes_hot_regions_and_tracks_them() {
        let (mut ctx, mut spaces) = setup();
        let mut policy = HawkEyePolicy::new();
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            // A tiny VMA so faults land as 4KB pages, grown afterwards so
            // the chunk becomes huge-mappable.
            space.mmap_at(Vpn::new(0), 4, VmaKind::Anon).unwrap();
            for i in 0..4 {
                policy.on_fault(&mut ctx, space, Vpn::new(i)).unwrap();
            }
            space.mmap_at(Vpn::new(4), 12, VmaKind::Anon).unwrap();
        }
        let out = policy.on_tick(&mut ctx, &mut spaces);
        assert!(out.promotions >= 1);
        assert!(policy.tracked_chunks() >= 1);
    }

    #[test]
    fn never_uses_giant_pages() {
        let (mut ctx, mut spaces) = setup();
        let mut policy = HawkEyePolicy::new();
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            space.mmap_at(Vpn::new(0), 64, VmaKind::Anon).unwrap();
            for i in (0..64).step_by(8) {
                policy.on_fault(&mut ctx, space, Vpn::new(i)).unwrap();
            }
        }
        policy.on_tick(&mut ctx, &mut spaces);
        let space = spaces.get(AsId::new(1)).unwrap();
        assert_eq!(space.page_table().mapped_pages(PageSize::new(2)), 0);
    }
}
