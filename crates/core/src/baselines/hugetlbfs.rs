//! Static large-page pre-reservation (`libHugetlbfs`).

use trident_phys::{FrameUse, MappingOwner, PhysMemError};
use trident_types::{PageSize, Pfn, Vpn};
use trident_vm::{AddressSpace, VmaKind};

use crate::{map_chunk, touched_chunk_reserved, FaultOutcome, MmContext, PagePolicy, PolicyError};

/// The `libHugetlbfs` baseline: a fixed number of large pages of one size
/// is reserved up front; eligible segments are backed from the reservation,
/// everything else gets 4KB pages.
///
/// Its two structural weaknesses, both demonstrated in the paper, emerge
/// naturally here: reservation fails when physical memory is fragmented
/// (§7, "Comparison with static allocation"), and stacks can never be
/// backed by the reservation (§4.1, why THP beats it for Redis).
#[derive(Debug, Clone)]
pub struct HugetlbfsPolicy {
    size: PageSize,
    /// Architecture label of `size` (e.g. "2MB"), captured at reservation
    /// time for the policy's report name.
    label: String,
    pool: Vec<Pfn>,
    reserved: usize,
}

impl HugetlbfsPolicy {
    /// Reserves `count` pages of `size` from physical memory.
    ///
    /// # Errors
    ///
    /// Returns the underlying allocation error if the reservation cannot
    /// be satisfied — the paper's observation that 1GB-Hugetlbfs simply
    /// fails on fragmented memory. Partially reserved frames are released.
    pub fn reserve(
        ctx: &mut MmContext,
        size: PageSize,
        count: usize,
    ) -> Result<HugetlbfsPolicy, PhysMemError> {
        let mut pool = Vec::with_capacity(count);
        for _ in 0..count {
            match ctx.mem.allocate(size, FrameUse::User, None) {
                Ok(pfn) => pool.push(pfn),
                Err(e) => {
                    for pfn in pool {
                        ctx.mem.free(pfn).expect("reserved frame is live");
                    }
                    return Err(e);
                }
            }
        }
        Ok(HugetlbfsPolicy {
            size,
            label: ctx.geometry().label(size),
            pool,
            reserved: count,
        })
    }

    /// Pages of the reserved size still available.
    #[must_use]
    pub fn available(&self) -> usize {
        self.pool.len()
    }

    /// Pages originally reserved.
    #[must_use]
    pub fn reserved(&self) -> usize {
        self.reserved
    }
}

impl PagePolicy for HugetlbfsPolicy {
    fn name(&self) -> String {
        format!("{}-Hugetlbfs", self.label)
    }

    fn on_fault(
        &mut self,
        ctx: &mut MmContext,
        space: &mut AddressSpace,
        vpn: Vpn,
    ) -> Result<FaultOutcome, PolicyError> {
        let Some(vma) = space.vma_containing(vpn) else {
            return Err(PolicyError::BadAddress(vpn));
        };
        let eligible = vma.kind != VmaKind::Stack;
        if eligible && !self.pool.is_empty() {
            if let Some(head) = touched_chunk_reserved(space, vpn, self.size) {
                let pfn = self.pool.pop().expect("checked non-empty");
                ctx.mem.set_owner(
                    pfn,
                    Some(MappingOwner {
                        asid: space.id(),
                        vpn: head,
                    }),
                );
                space
                    .page_table_mut()
                    .map(head, pfn, self.size)
                    .expect("chunk verified unmapped; reserved frame aligned");
                // Reserved pages were zeroed at boot: fault is cheap.
                let latency = ctx.cost.fault_base_ns;
                ctx.record_fault(self.size, latency);
                return Ok(FaultOutcome {
                    size: self.size,
                    latency_ns: latency,
                    prepared: true,
                });
            }
        }
        map_chunk(ctx, space, vpn, PageSize::BASE)?;
        let latency = ctx.cost.fault_base_ns;
        ctx.record_fault(PageSize::BASE, latency);
        Ok(FaultOutcome {
            size: PageSize::BASE,
            latency_ns: latency,
            prepared: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::PhysicalMemory;
    use trident_types::{AsId, PageGeometry};

    fn setup() -> (MmContext, AddressSpace) {
        let geo = PageGeometry::TINY;
        let ctx = MmContext::new(PhysicalMemory::new(
            geo,
            8 * geo.base_pages(PageSize::new(2)),
        ));
        (ctx, AddressSpace::new(AsId::new(1), geo))
    }

    #[test]
    fn reserved_pages_back_eligible_chunks() {
        let (mut ctx, mut space) = setup();
        let mut policy = HugetlbfsPolicy::reserve(&mut ctx, PageSize::new(2), 2).unwrap();
        space.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
        let out = policy.on_fault(&mut ctx, &mut space, Vpn::new(70)).unwrap();
        assert_eq!(out.size, PageSize::new(2));
        assert!(out.prepared);
        assert_eq!(policy.available(), 1);
    }

    #[test]
    fn stacks_are_never_backed_by_the_reservation() {
        let (mut ctx, mut space) = setup();
        let mut policy = HugetlbfsPolicy::reserve(&mut ctx, PageSize::new(2), 2).unwrap();
        space.mmap_at(Vpn::new(0), 64, VmaKind::Stack).unwrap();
        let out = policy.on_fault(&mut ctx, &mut space, Vpn::new(5)).unwrap();
        assert_eq!(out.size, PageSize::BASE);
        assert_eq!(policy.available(), 2);
    }

    #[test]
    fn exhausted_pool_falls_back_to_base_pages() {
        let (mut ctx, mut space) = setup();
        let mut policy = HugetlbfsPolicy::reserve(&mut ctx, PageSize::new(2), 1).unwrap();
        space.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
        policy.on_fault(&mut ctx, &mut space, Vpn::new(0)).unwrap();
        let out = policy.on_fault(&mut ctx, &mut space, Vpn::new(64)).unwrap();
        assert_eq!(out.size, PageSize::BASE);
    }

    #[test]
    fn reservation_fails_on_fragmented_memory_and_rolls_back() {
        let (mut ctx, _) = setup();
        // Break every giant chunk with one pinned page per region.
        for r in 0..8 {
            ctx.mem
                .allocate_in_region(r, 0, FrameUse::Kernel, None)
                .unwrap();
        }
        let free_before = ctx.mem.free_pages();
        let result = HugetlbfsPolicy::reserve(&mut ctx, PageSize::new(2), 1);
        assert!(result.is_err());
        assert_eq!(ctx.mem.free_pages(), free_before);
    }

    #[test]
    fn name_includes_the_size() {
        let (mut ctx, _) = setup();
        let policy = HugetlbfsPolicy::reserve(&mut ctx, PageSize::new(1), 1).unwrap();
        assert_eq!(policy.name(), "32KB-Hugetlbfs");
        assert_eq!(policy.reserved(), 1);
    }
}
