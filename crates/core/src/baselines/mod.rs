//! The systems Trident is evaluated against.

pub mod base;
pub mod hawkeye;
pub mod hugetlbfs;
pub mod ingens;
pub mod thp;
