//! The Ingens baseline (OSDI 2016, the paper's reference [36]).
//!
//! Ingens "mixes THP's aggressive large page allocation with FreeBSD's
//! conservative approach to reduce memory bloat and latency": instead of
//! mapping a 2MB page at first touch, it waits until a *utilization
//! threshold* of the huge-sized region has actually been touched with 4KB
//! pages, then promotes. That bounds bloat (untouched memory is never
//! backed by a large page) at the cost of running longer on 4KB pages.
//! Like THP and HawkEye it manages 2MB pages only.

use trident_obs::Event;
use trident_types::{PageSize, Vpn};
use trident_vm::{promotion_candidates, AddressSpace};

use crate::{
    map_chunk, promote_chunk, CompactionKind, Compactor, FaultOutcome, MmContext, PagePolicy,
    PolicyError, PromoteError, PromotionStyle, SpaceSet, TickOutcome,
};

/// The Ingens policy: conservative, utilization-gated 2MB promotion.
#[derive(Debug, Clone)]
pub struct IngensPolicy {
    /// Fraction of a huge region that must be touched before promotion
    /// (Ingens' default corresponds to 90%).
    utilization_threshold: f64,
    compactor: Compactor,
    next_space: usize,
    /// Chunks promoted per tick.
    chunk_budget: usize,
}

impl IngensPolicy {
    /// Creates the policy with the canonical 90% utilization threshold.
    #[must_use]
    pub fn new() -> IngensPolicy {
        IngensPolicy::with_threshold(0.9)
    }

    /// Creates the policy with a custom utilization threshold in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `(0, 1]`.
    #[must_use]
    pub fn with_threshold(utilization_threshold: f64) -> IngensPolicy {
        assert!(
            utilization_threshold > 0.0 && utilization_threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        IngensPolicy {
            utilization_threshold,
            compactor: Compactor::new(CompactionKind::Normal),
            next_space: 0,
            chunk_budget: 16,
        }
    }

    /// The configured utilization threshold.
    #[must_use]
    pub fn utilization_threshold(&self) -> f64 {
        self.utilization_threshold
    }
}

impl Default for IngensPolicy {
    fn default() -> Self {
        IngensPolicy::new()
    }
}

impl PagePolicy for IngensPolicy {
    fn name(&self) -> String {
        "Ingens".to_owned()
    }

    /// Conservative fault path: always 4KB — large pages come only from
    /// utilization-gated promotion.
    fn on_fault(
        &mut self,
        ctx: &mut MmContext,
        space: &mut AddressSpace,
        vpn: Vpn,
    ) -> Result<FaultOutcome, PolicyError> {
        if space.vma_containing(vpn).is_none() {
            return Err(PolicyError::BadAddress(vpn));
        }
        map_chunk(ctx, space, vpn, PageSize::BASE)?;
        let latency = ctx.cost.fault_base_ns;
        ctx.record_fault(PageSize::BASE, latency);
        Ok(FaultOutcome {
            size: PageSize::BASE,
            latency_ns: latency,
            prepared: false,
        })
    }

    fn on_tick(&mut self, ctx: &mut MmContext, spaces: &mut SpaceSet) -> TickOutcome {
        let mut out = TickOutcome::default();
        let ids = spaces.ids();
        if ids.is_empty() {
            return out;
        }
        let asid = ids[self.next_space % ids.len()];
        self.next_space = self.next_space.wrapping_add(1);

        let geo = ctx.geometry();
        let span = geo.base_pages(PageSize::new(1));
        let scan_pages = spaces
            .get(asid)
            .map(|s| s.total_vma_pages())
            .unwrap_or_default();
        out.daemon_ns += scan_pages * ctx.cost.scan_page_ns;

        // Utilization gate: only chunks whose touched fraction clears the
        // threshold are promoted — the anti-bloat half of Ingens.
        let candidates: Vec<Vpn> = {
            let Some(space) = spaces.get(asid) else {
                return out;
            };
            promotion_candidates(space, PageSize::new(1))
                .into_iter()
                .filter(|(_, profile)| {
                    profile.mapped_total() as f64 >= self.utilization_threshold * span as f64
                })
                .map(|(head, _)| head)
                .collect()
        };
        for head in candidates.into_iter().take(self.chunk_budget) {
            if !ctx.mem.has_free(PageSize::new(1)) {
                out.compaction_runs += 1;
                let c = self.compactor.compact(ctx, spaces, PageSize::new(1));
                out.daemon_ns += c.ns;
                if !c.success {
                    break;
                }
            }
            match promote_chunk(
                ctx,
                spaces,
                asid,
                head,
                PageSize::new(1),
                PromotionStyle::Copy,
            ) {
                Ok(p) => {
                    out.daemon_ns += p.ns;
                    out.promotions += 1;
                }
                Err(PromoteError::NoContiguity) => break,
                Err(PromoteError::NotACandidate) => {}
            }
        }
        ctx.record(Event::DaemonTick { ns: out.daemon_ns });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::PhysicalMemory;
    use trident_types::{AsId, PageGeometry};
    use trident_vm::VmaKind;

    fn setup() -> (MmContext, SpaceSet) {
        let geo = PageGeometry::TINY;
        let ctx = MmContext::new(PhysicalMemory::new(
            geo,
            8 * geo.base_pages(PageSize::new(2)),
        ));
        let mut spaces = SpaceSet::new();
        spaces.insert(AddressSpace::new(AsId::new(1), geo));
        (ctx, spaces)
    }

    #[test]
    fn fault_path_is_always_base_pages() {
        let (mut ctx, mut spaces) = setup();
        let mut policy = IngensPolicy::new();
        let space = spaces.get_mut(AsId::new(1)).unwrap();
        space.mmap_at(Vpn::new(0), 64, VmaKind::Anon).unwrap();
        let out = policy.on_fault(&mut ctx, space, Vpn::new(0)).unwrap();
        assert_eq!(out.size, PageSize::BASE);
    }

    #[test]
    fn promotion_waits_for_the_utilization_threshold() {
        let (mut ctx, mut spaces) = setup();
        let mut policy = IngensPolicy::new(); // 90% of an 8-page chunk = 8 pages
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            space.mmap_at(Vpn::new(0), 16, VmaKind::Anon).unwrap();
            // Touch 6 of 8 pages in the first huge chunk: below threshold.
            for i in 0..6 {
                policy.on_fault(&mut ctx, space, Vpn::new(i)).unwrap();
            }
        }
        policy.on_tick(&mut ctx, &mut spaces);
        let space = spaces.get(AsId::new(1)).unwrap();
        assert_eq!(space.page_table().mapped_pages(PageSize::new(1)), 0);
        // Touch the rest; now it promotes.
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            for i in 6..8 {
                policy.on_fault(&mut ctx, space, Vpn::new(i)).unwrap();
            }
        }
        policy.on_tick(&mut ctx, &mut spaces);
        let space = spaces.get(AsId::new(1)).unwrap();
        assert_eq!(space.page_table().mapped_pages(PageSize::new(1)), 1);
    }

    #[test]
    fn conservative_promotion_creates_no_bloat() {
        let (mut ctx, mut spaces) = setup();
        let mut policy = IngensPolicy::new();
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            space.mmap_at(Vpn::new(0), 64, VmaKind::Anon).unwrap();
            // Sparse touching: half of each huge chunk.
            for chunk in 0..8 {
                for i in 0..4 {
                    policy
                        .on_fault(&mut ctx, space, Vpn::new(chunk * 8 + i))
                        .unwrap();
                }
            }
        }
        for _ in 0..4 {
            policy.on_tick(&mut ctx, &mut spaces);
        }
        assert_eq!(
            ctx.stats.bloat_pages, 0,
            "Ingens never promotes sparse chunks"
        );
        assert_eq!(ctx.stats.promotions[1], 0);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn rejects_invalid_threshold() {
        let _ = IngensPolicy::with_threshold(0.0);
    }
}
