//! Linux's Transparent Huge Pages (the paper's primary baseline).

use trident_obs::Event;
use trident_types::{PageSize, Vpn};
use trident_vm::AddressSpace;

use crate::{
    map_chunk, touched_chunk, FaultOutcome, MmContext, PagePolicy, PolicyError, Promoter,
    PromoterConfig, SpaceSet, TickOutcome,
};

/// Linux THP: aggressive 2MB allocation at fault time when the chunk is
/// huge-mappable and contiguity exists, plus `khugepaged` promotion of
/// 4KB-mapped ranges with normal compaction (§2).
///
/// # Examples
///
/// ```
/// use trident_core::{MmContext, PagePolicy, ThpPolicy};
/// use trident_phys::PhysicalMemory;
/// use trident_types::{AsId, PageGeometry, PageSize, Vpn};
/// use trident_vm::{AddressSpace, VmaKind};
///
/// let geo = PageGeometry::TINY;
/// let mut ctx = MmContext::new(PhysicalMemory::new(geo, 4 * geo.base_pages(PageSize::new(2))));
/// let mut space = AddressSpace::new(AsId::new(1), geo);
/// space.mmap_at(Vpn::new(0), 64, VmaKind::Anon)?;
/// let outcome = ThpPolicy::new().on_fault(&mut ctx, &mut space, Vpn::new(9))?;
/// assert_eq!(outcome.size, PageSize::new(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThpPolicy {
    promoter: Promoter,
}

impl ThpPolicy {
    /// Creates the policy with THP's default `khugepaged` configuration.
    #[must_use]
    pub fn new() -> ThpPolicy {
        ThpPolicy {
            promoter: Promoter::new(PromoterConfig::thp()),
        }
    }
}

impl Default for ThpPolicy {
    fn default() -> Self {
        ThpPolicy::new()
    }
}

impl PagePolicy for ThpPolicy {
    fn name(&self) -> String {
        "2MB-THP".to_owned()
    }

    fn on_fault(
        &mut self,
        ctx: &mut MmContext,
        space: &mut AddressSpace,
        vpn: Vpn,
    ) -> Result<FaultOutcome, PolicyError> {
        if space.vma_containing(vpn).is_none() {
            return Err(PolicyError::BadAddress(vpn));
        }
        if let Some(head) = touched_chunk(space, vpn, PageSize::new(1)) {
            // An injected allocation fault degrades to the 4KB path below;
            // without injection the has_free check makes map_chunk
            // infallible here.
            if ctx.mem.has_free(PageSize::new(1))
                && map_chunk(ctx, space, head, PageSize::new(1)).is_ok()
            {
                let latency = ctx.cost.fault_ns(&ctx.geometry(), PageSize::new(1), false);
                ctx.record_fault(PageSize::new(1), latency);
                return Ok(FaultOutcome {
                    size: PageSize::new(1),
                    latency_ns: latency,
                    prepared: false,
                });
            }
        }
        map_chunk(ctx, space, vpn, PageSize::BASE)?;
        let latency = ctx.cost.fault_base_ns;
        ctx.record_fault(PageSize::BASE, latency);
        Ok(FaultOutcome {
            size: PageSize::BASE,
            latency_ns: latency,
            prepared: false,
        })
    }

    fn on_tick(&mut self, ctx: &mut MmContext, spaces: &mut SpaceSet) -> TickOutcome {
        let (out, _) = self.promoter.tick(ctx, spaces);
        ctx.record(Event::DaemonTick { ns: out.daemon_ns });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::PhysicalMemory;
    use trident_types::{AsId, PageGeometry};
    use trident_vm::VmaKind;

    fn setup() -> (MmContext, SpaceSet) {
        let geo = PageGeometry::TINY;
        let ctx = MmContext::new(PhysicalMemory::new(
            geo,
            8 * geo.base_pages(PageSize::new(2)),
        ));
        let mut spaces = SpaceSet::new();
        spaces.insert(AddressSpace::new(AsId::new(1), geo));
        (ctx, spaces)
    }

    #[test]
    fn unaligned_tail_faults_with_base_pages() {
        let (mut ctx, mut spaces) = setup();
        let space = spaces.get_mut(AsId::new(1)).unwrap();
        // 4-page VMA at page 3: no aligned huge chunk fits inside.
        space.mmap_at(Vpn::new(3), 4, VmaKind::Anon).unwrap();
        let out = ThpPolicy::new()
            .on_fault(&mut ctx, space, Vpn::new(4))
            .unwrap();
        assert_eq!(out.size, PageSize::BASE);
    }

    #[test]
    fn khugepaged_promotes_base_mapped_ranges() {
        let (mut ctx, mut spaces) = setup();
        let mut policy = ThpPolicy::new();
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            space.mmap_at(Vpn::new(4), 8, VmaKind::Anon).unwrap();
            // Faults land as 4KB since the VMA has no full huge chunk...
            // extend it afterwards so the chunk becomes mappable.
            for i in 4..12 {
                policy.on_fault(&mut ctx, space, Vpn::new(i)).unwrap();
            }
            space.mmap_at(Vpn::new(12), 8, VmaKind::Anon).unwrap();
        }
        let out = policy.on_tick(&mut ctx, &mut spaces);
        assert!(out.promotions >= 1);
        let space = spaces.get(AsId::new(1)).unwrap();
        assert!(space.page_table().mapped_pages(PageSize::new(1)) >= 1);
        assert_eq!(space.page_table().mapped_pages(PageSize::new(2)), 0);
    }

    #[test]
    fn thp_never_maps_giant_pages() {
        let (mut ctx, mut spaces) = setup();
        let mut policy = ThpPolicy::new();
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            space.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
            for i in 0..128 {
                if space.page_table().translate(Vpn::new(i)).is_none() {
                    policy.on_fault(&mut ctx, space, Vpn::new(i)).unwrap();
                }
            }
        }
        for _ in 0..4 {
            policy.on_tick(&mut ctx, &mut spaces);
        }
        let space = spaces.get(AsId::new(1)).unwrap();
        assert_eq!(space.page_table().mapped_pages(PageSize::new(2)), 0);
        assert_eq!(space.page_table().mapped_pages(PageSize::new(1)), 16);
    }
}
