//! Latency constants of the memory-management operations.
//!
//! Absolute values come from the paper's own measurements on its Skylake
//! testbed (we have no such machine; see DESIGN.md §6): a synchronous 1GB
//! page fault takes ≈400ms, dominated by zero-filling; async zero-fill cuts
//! it to 2.7ms; a 2MB fault takes ≈850µs; copy-based promotion of a 1GB
//! region takes ≈600ms; a hypercall costs ≈300ns; Trident_pv promotes the
//! same region in <30ms unbatched and ≈500µs batched (§5.1.2, §6).

use trident_types::{PageGeometry, PageSize, TridentError};

/// Nanosecond-denominated cost model shared by all policies.
///
/// Large-page fault latencies are *derived* from the zeroing bandwidth and
/// the page size ([`CostModel::fault_ns`]), so they stay correct when the
/// simulator runs with a scaled-down geometry: with the real x86-64
/// geometry they reproduce the paper's ≈850µs 2MB and ≈400ms 1GB faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Minor fault handled with a 4KB page.
    pub fault_base_ns: u64,
    /// How much cheaper a pre-zeroed giant fault is than a synchronous
    /// one: the paper measures 400ms → 2.7ms, a factor of ≈148.
    pub prepared_fault_divisor: u64,
    /// Sustained copy bandwidth for migration/promotion, bytes per
    /// nanosecond (1.8 GB/s ≈ the paper's 600ms per 1GB promotion).
    pub copy_bytes_per_ns: f64,
    /// Sustained zeroing bandwidth of the background zero-fill thread.
    pub zero_bytes_per_ns: f64,
    /// Guest→hypervisor transition cost of one hypercall.
    pub hypercall_ns: u64,
    /// Updating one pair of gPA→hPA mappings during a copy-less exchange.
    pub pv_exchange_pair_ns: u64,
    /// Additional per-exchange overhead when each exchange issues its own
    /// hypercall (lock acquisition, EPT synchronization).
    pub pv_unbatched_extra_ns: u64,
    /// TLB shootdown after a remapping batch.
    pub tlb_shootdown_ns: u64,
    /// Promotion-scan cost per base page examined (daemon CPU).
    pub scan_page_ns: u64,
    /// Simulated core frequency, cycles per nanosecond.
    pub cycles_per_ns: f64,
}

impl CostModel {
    /// Starts building a cost model from the paper's defaults. Each knob
    /// is validated at [`CostModelBuilder::build`] time.
    ///
    /// # Examples
    ///
    /// ```
    /// use trident_core::CostModel;
    ///
    /// let m = CostModel::builder().fault_base_ns(500).build()?;
    /// assert_eq!(m.fault_base_ns, 500);
    /// assert!(CostModel::builder().copy_bytes_per_ns(0.0).build().is_err());
    /// # Ok::<(), trident_types::TridentError>(())
    /// ```
    #[must_use]
    pub fn builder() -> CostModelBuilder {
        CostModelBuilder {
            model: CostModel::default(),
        }
    }

    /// Fault latency for mapping a page of `size`. Synchronous large-page
    /// faults are dominated by zero-filling the page (zeroing is required
    /// so leftover data cannot leak, §5.1.2); `prepared` giant faults use
    /// an async-zeroed block and skip it.
    #[must_use]
    pub fn fault_ns(&self, geo: &PageGeometry, size: PageSize, prepared: bool) -> u64 {
        if size.is_base() {
            return self.fault_base_ns;
        }
        // Every larger rung (group spans included) zero-fills its bytes;
        // only the ladder's top rung has a pre-zeroed pool to draw from.
        let sync = self.fault_base_ns + self.zero_ns(geo.bytes(size));
        if prepared && size == geo.largest() {
            sync / self.prepared_fault_divisor
        } else {
            sync
        }
    }

    /// Nanoseconds to copy `bytes` bytes.
    #[must_use]
    pub fn copy_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.copy_bytes_per_ns) as u64
    }

    /// Nanoseconds for the background thread to zero `bytes` bytes.
    #[must_use]
    pub fn zero_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.zero_bytes_per_ns) as u64
    }

    /// Nanoseconds to exchange `pairs` gPA→hPA mapping pairs in one batched
    /// hypercall (Trident_pv, §6).
    #[must_use]
    pub fn pv_batched_exchange_ns(&self, pairs: u64) -> u64 {
        self.hypercall_ns + pairs * self.pv_exchange_pair_ns
    }

    /// Nanoseconds to exchange `pairs` pairs with one hypercall each.
    #[must_use]
    pub fn pv_unbatched_exchange_ns(&self, pairs: u64) -> u64 {
        pairs * (self.hypercall_ns + self.pv_exchange_pair_ns + self.pv_unbatched_extra_ns)
    }

    /// Converts nanoseconds to core cycles.
    #[must_use]
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as f64 * self.cycles_per_ns) as u64
    }
}

impl Default for CostModel {
    /// Constants matched to the paper's reported measurements.
    fn default() -> Self {
        CostModel {
            fault_base_ns: 1_000,
            prepared_fault_divisor: 148,
            copy_bytes_per_ns: 1.8,
            zero_bytes_per_ns: 2.7,
            hypercall_ns: 300,
            pv_exchange_pair_ns: 970,
            pv_unbatched_extra_ns: 55_000,
            tlb_shootdown_ns: 5_000,
            scan_page_ns: 15,
            cycles_per_ns: 2.3,
        }
    }
}

/// Builder for [`CostModel`]: starts from the paper-matched defaults and
/// rejects non-physical values (zero bandwidths, a zero divisor, a
/// non-positive clock) at [`build`](CostModelBuilder::build) time.
#[derive(Debug, Clone)]
pub struct CostModelBuilder {
    model: CostModel,
}

impl CostModelBuilder {
    /// Sets the 4KB minor-fault latency.
    #[must_use]
    pub fn fault_base_ns(mut self, ns: u64) -> Self {
        self.model.fault_base_ns = ns;
        self
    }

    /// Sets the synchronous/prepared giant-fault latency ratio.
    #[must_use]
    pub fn prepared_fault_divisor(mut self, divisor: u64) -> Self {
        self.model.prepared_fault_divisor = divisor;
        self
    }

    /// Sets the migration/promotion copy bandwidth (bytes per ns).
    #[must_use]
    pub fn copy_bytes_per_ns(mut self, bw: f64) -> Self {
        self.model.copy_bytes_per_ns = bw;
        self
    }

    /// Sets the background zeroing bandwidth (bytes per ns).
    #[must_use]
    pub fn zero_bytes_per_ns(mut self, bw: f64) -> Self {
        self.model.zero_bytes_per_ns = bw;
        self
    }

    /// Sets the hypercall transition cost.
    #[must_use]
    pub fn hypercall_ns(mut self, ns: u64) -> Self {
        self.model.hypercall_ns = ns;
        self
    }

    /// Sets the per-pair pv mapping-exchange cost.
    #[must_use]
    pub fn pv_exchange_pair_ns(mut self, ns: u64) -> Self {
        self.model.pv_exchange_pair_ns = ns;
        self
    }

    /// Sets the per-exchange overhead of unbatched pv promotion.
    #[must_use]
    pub fn pv_unbatched_extra_ns(mut self, ns: u64) -> Self {
        self.model.pv_unbatched_extra_ns = ns;
        self
    }

    /// Sets the TLB-shootdown cost after a remapping batch.
    #[must_use]
    pub fn tlb_shootdown_ns(mut self, ns: u64) -> Self {
        self.model.tlb_shootdown_ns = ns;
        self
    }

    /// Sets the promotion-scan cost per base page.
    #[must_use]
    pub fn scan_page_ns(mut self, ns: u64) -> Self {
        self.model.scan_page_ns = ns;
        self
    }

    /// Sets the simulated core frequency (cycles per ns).
    #[must_use]
    pub fn cycles_per_ns(mut self, f: f64) -> Self {
        self.model.cycles_per_ns = f;
        self
    }

    /// Validates and returns the model.
    ///
    /// # Errors
    ///
    /// [`TridentError::InvalidConfig`] when a bandwidth or the clock is not
    /// strictly positive or not finite, or the prepared-fault divisor is
    /// zero (it divides).
    pub fn build(self) -> Result<CostModel, TridentError> {
        let m = self.model;
        if m.prepared_fault_divisor == 0 {
            return Err(TridentError::InvalidConfig {
                field: "prepared_fault_divisor",
                reason: "must be nonzero (divides the synchronous fault latency)",
            });
        }
        for (field, value) in [
            ("copy_bytes_per_ns", m.copy_bytes_per_ns),
            ("zero_bytes_per_ns", m.zero_bytes_per_ns),
            ("cycles_per_ns", m.cycles_per_ns),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(TridentError::InvalidConfig {
                    field,
                    reason: "must be finite and strictly positive",
                });
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_types::{GIB, MIB};

    #[test]
    fn giant_copy_takes_roughly_600ms() {
        let m = CostModel::default();
        let ns = m.copy_ns(GIB);
        assert!((550_000_000..650_000_000).contains(&ns), "{ns}");
    }

    #[test]
    fn batched_pv_promotion_is_roughly_500us() {
        let m = CostModel::default();
        // A 1GB promotion exchanges 512 2MB pages.
        let ns = m.pv_batched_exchange_ns(512);
        assert!((450_000..550_000).contains(&ns), "{ns}");
    }

    #[test]
    fn unbatched_pv_promotion_is_under_30ms_but_far_slower_than_batched() {
        let m = CostModel::default();
        let ns = m.pv_unbatched_exchange_ns(512);
        assert!(ns < 30_000_000, "{ns}");
        assert!(ns > 10 * m.pv_batched_exchange_ns(512));
    }

    #[test]
    fn pv_beats_copy_for_giant_promotion_by_orders_of_magnitude() {
        let m = CostModel::default();
        assert!(m.copy_ns(GIB) > 1000 * m.pv_batched_exchange_ns(512));
    }

    #[test]
    fn fault_latencies_match_the_paper_on_real_geometry() {
        let m = CostModel::default();
        let geo = trident_types::PageGeometry::X86_64;
        // ≈400ms synchronous 1GB fault, 2.7ms prepared (§5.1.2).
        let giant_sync = m.fault_ns(&geo, PageSize::new(2), false);
        assert!(
            (380_000_000..420_000_000).contains(&giant_sync),
            "{giant_sync}"
        );
        assert!(giant_sync / m.fault_ns(&geo, PageSize::new(2), true) > 100);
        // ≈850µs 2MB fault.
        let huge = m.fault_ns(&geo, PageSize::new(1), false);
        assert!((700_000..1_000_000).contains(&huge), "{huge}");
    }

    #[test]
    fn fault_latencies_shrink_with_scaled_geometry() {
        let m = CostModel::default();
        let real = trident_types::PageGeometry::X86_64;
        let scaled = trident_types::PageGeometry::new(12, 5, 14); // 1/16
        assert!(
            m.fault_ns(&scaled, PageSize::new(2), false)
                < m.fault_ns(&real, PageSize::new(2), false) / 8
        );
    }

    #[test]
    fn zeroing_a_huge_page_is_sub_millisecond() {
        let m = CostModel::default();
        assert!(m.zero_ns(2 * MIB) < 1_000_000);
    }

    #[test]
    fn builder_defaults_match_default_and_setters_stick() {
        assert_eq!(CostModel::builder().build().unwrap(), CostModel::default());
        let m = CostModel::builder()
            .fault_base_ns(2_000)
            .prepared_fault_divisor(100)
            .copy_bytes_per_ns(2.0)
            .zero_bytes_per_ns(3.0)
            .hypercall_ns(250)
            .pv_exchange_pair_ns(900)
            .pv_unbatched_extra_ns(50_000)
            .tlb_shootdown_ns(4_000)
            .scan_page_ns(10)
            .cycles_per_ns(3.0)
            .build()
            .unwrap();
        assert_eq!(m.fault_base_ns, 2_000);
        assert_eq!(m.cycles_per_ns, 3.0);
    }

    #[test]
    fn builder_rejects_non_physical_values() {
        for err in [
            CostModel::builder().prepared_fault_divisor(0).build(),
            CostModel::builder().copy_bytes_per_ns(0.0).build(),
            CostModel::builder().zero_bytes_per_ns(-1.0).build(),
            CostModel::builder().cycles_per_ns(f64::NAN).build(),
            CostModel::builder().cycles_per_ns(f64::INFINITY).build(),
        ] {
            assert!(matches!(err, Err(TridentError::InvalidConfig { .. })));
        }
    }
}
