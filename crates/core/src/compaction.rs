//! Physical-memory compaction: Linux's sequential scan versus Trident's
//! smart compaction (§5.1.3, Figure 6).
//!
//! *Normal* compaction scans physical memory from a persistent cursor,
//! migrating every movable allocation it meets toward the high end of
//! memory, oblivious to how full each region is; a single unmovable frame
//! wastes all copying already done for that region. *Smart* compaction
//! instead consults the per-region counters to **select** the emptiest
//! movable-only region as its source (minimizing the bytes that must move)
//! and the fullest regions as targets.

use trident_obs::{Event, SpanKind};
use trident_phys::{AllocationUnit, RegionId};
use trident_types::PageSize;

use crate::{MmContext, SpaceSet};

/// Which compaction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompactionKind {
    /// Linux's sequential-scan compaction (Figure 6a).
    Normal,
    /// Trident's counter-guided compaction (Figure 6b).
    Smart,
}

/// What a compaction run accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Whether a free chunk of the requested size now exists.
    pub success: bool,
    /// Bytes of data movement performed (Figure 7's metric).
    pub bytes_copied: u64,
    /// CPU time of the run (scanning + copying) in nanoseconds.
    pub ns: u64,
    /// Allocation units migrated.
    pub migrated_units: u64,
}

/// A compaction engine with persistent scan state.
///
/// # Examples
///
/// ```
/// use trident_core::{CompactionKind, Compactor, MmContext, SpaceSet};
/// use trident_phys::PhysicalMemory;
/// use trident_types::{PageGeometry, PageSize};
///
/// let geo = PageGeometry::TINY;
/// let mut ctx = MmContext::new(PhysicalMemory::new(geo, 8 * geo.base_pages(PageSize::new(2))));
/// let mut spaces = SpaceSet::new();
/// let mut compactor = Compactor::new(CompactionKind::Smart);
/// // Memory is pristine: a giant chunk already exists, so this is a no-op.
/// let outcome = compactor.compact(&mut ctx, &mut spaces, PageSize::new(2));
/// assert!(outcome.success);
/// assert_eq!(outcome.bytes_copied, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Compactor {
    kind: CompactionKind,
    /// Next region the sequential (normal) scan will visit.
    scan_cursor: u64,
    /// Source regions a single smart run may attempt.
    max_source_regions: usize,
    /// Unit migrations a single run may perform before giving up —
    /// kcompactd-style work bounding so a hopeless machine does not make
    /// the daemon spin forever.
    max_migrations: u64,
}

impl Compactor {
    /// Creates a compactor of the given kind.
    #[must_use]
    pub fn new(kind: CompactionKind) -> Compactor {
        Compactor {
            kind,
            scan_cursor: 0,
            max_source_regions: 64,
            max_migrations: 4096,
        }
    }

    /// The algorithm this compactor runs.
    #[must_use]
    pub fn kind(&self) -> CompactionKind {
        self.kind
    }

    /// Attempts to create one free chunk large enough for a page of
    /// `target`. Smart selection only pays off at giant granularity;
    /// requests for smaller chunks always use the normal algorithm, as
    /// Linux itself serves them.
    pub fn compact(
        &mut self,
        ctx: &mut MmContext,
        spaces: &mut SpaceSet,
        target: PageSize,
    ) -> CompactionOutcome {
        let smart = self.kind == CompactionKind::Smart;
        let mut out = CompactionOutcome::default();
        ctx.span_begin(SpanKind::Compaction);
        if ctx.mem.has_free(target) {
            out.success = true;
            ctx.record(Event::CompactionRun {
                smart,
                succeeded: true,
            });
            ctx.span_end(SpanKind::Compaction, out.ns);
            return out;
        }
        // An injected abort models kcompactd bailing before migrating
        // anything (lock contention, OOM-killer interference): the pass is
        // attempted and fails, producing no contiguity and copying nothing.
        if ctx.inject(trident_obs::InjectSite::Compaction) {
            ctx.record(Event::CompactionRun {
                smart,
                succeeded: false,
            });
            ctx.span_end(SpanKind::Compaction, out.ns);
            return out;
        }
        // Smart compaction's emptiness/fullness region pairing only pays
        // when hunting the ladder's top-rung chunk; smaller targets use
        // the normal linear scan.
        if self.kind == CompactionKind::Smart && target == ctx.geometry().largest() {
            self.smart(ctx, spaces, &mut out);
        } else {
            self.normal(ctx, spaces, target, &mut out);
        }
        out.ns += ctx.cost.copy_ns(out.bytes_copied);
        ctx.record(Event::CompactionRun {
            smart,
            succeeded: out.success,
        });
        ctx.span_end(SpanKind::Compaction, out.ns);
        #[cfg(debug_assertions)]
        crate::assert_mm_consistent(ctx, spaces);
        out
    }

    /// Smart compaction: pick sources by emptiness, targets by fullness.
    fn smart(&mut self, ctx: &mut MmContext, spaces: &mut SpaceSet, out: &mut CompactionOutcome) {
        let geo = ctx.geometry();
        let giant_order = geo.order(geo.largest());
        let sources: Vec<RegionId> = ctx
            .mem
            .regions()
            .source_candidates()
            .into_iter()
            .take(self.max_source_regions)
            .collect();
        for source in sources {
            let units = ctx.mem.units_in_region(source);
            // A region holding a giant allocation cannot be emptied into
            // anywhere smaller; counters already exclude unmovable regions.
            if units.iter().any(|u| u.order == giant_order) {
                continue;
            }
            if out.migrated_units >= self.max_migrations {
                break; // work bound exhausted
            }
            let mut emptied = true;
            // Move the largest units first: they need the scarcest holes.
            let mut ordered = units;
            ordered.sort_by_key(|u| std::cmp::Reverse(u.order));
            for unit in ordered {
                let targets = ctx.mem.regions().target_candidates(source);
                if !migrate_unit(ctx, spaces, &unit, &targets, out) {
                    emptied = false;
                    break;
                }
            }
            if emptied
                && ctx
                    .mem
                    .buddy()
                    .is_block_free(geo.giant_region_start(source), giant_order)
            {
                out.success = true;
                return;
            }
        }
        // Selection found nothing freeable; report whatever state we left.
        out.success = ctx.mem.has_free(PageSize::new(2));
    }

    /// Normal compaction: sequential region scan from the persistent
    /// cursor, migrating toward high addresses, abandoning a region at the
    /// first unmovable frame (the copying already done for it is wasted —
    /// exactly the pathology §5.1.3 describes).
    fn normal(
        &mut self,
        ctx: &mut MmContext,
        spaces: &mut SpaceSet,
        target: PageSize,
        out: &mut CompactionOutcome,
    ) {
        let geo = ctx.geometry();
        let giant_order = geo.order(geo.largest());
        let region_count = ctx.mem.regions().region_count();
        if region_count == 0 {
            return;
        }
        for _ in 0..region_count {
            let source = self.scan_cursor % region_count;
            self.scan_cursor = (self.scan_cursor + 1) % region_count;
            // Scanning a region's frame metadata costs CPU regardless of
            // outcome.
            out.ns += ctx.mem.regions().capacity(source) * ctx.cost.scan_page_ns;
            let units = ctx.mem.units_in_region(source);
            for unit in units {
                if unit.order == giant_order {
                    break; // nothing to gain moving a giant allocation
                }
                if !unit.use_.is_movable() {
                    break; // abandon the region; prior copying is wasted
                }
                // Free pages are taken from the high end of memory.
                let targets: Vec<RegionId> = (0..region_count)
                    .rev()
                    .filter(|r| *r != source && ctx.mem.regions().counters(*r).free_pages > 0)
                    .collect();
                if !migrate_unit(ctx, spaces, &unit, &targets, out) {
                    break;
                }
            }
            if ctx.mem.has_free(target) {
                out.success = true;
                return;
            }
            if out.migrated_units >= self.max_migrations {
                break; // work bound exhausted
            }
        }
        out.success = ctx.mem.has_free(target);
    }
}

/// Moves one allocation unit into the first target region that can host
/// it: allocate a same-order block there, fix the owner's page table
/// through the reverse map, free the old frames, and account the copy.
/// Returns whether the unit moved.
fn migrate_unit(
    ctx: &mut MmContext,
    spaces: &mut SpaceSet,
    unit: &AllocationUnit,
    targets: &[RegionId],
    out: &mut CompactionOutcome,
) -> bool {
    let geo = ctx.geometry();
    for &target in targets {
        let Ok(dst) = ctx.mem.allocate_in_region_rec(
            target,
            unit.order,
            unit.use_,
            unit.owner,
            &mut ctx.recorder,
        ) else {
            continue;
        };
        if let Some(owner) = unit.owner {
            let space = spaces
                .get_mut(owner.asid)
                .expect("reverse map points at a live space");
            let old = space
                .page_table_mut()
                .remap(owner.vpn, dst)
                .expect("reverse map matches a leaf mapping");
            // Invariant: a user allocation unit backs exactly one leaf of
            // the same span, so the leaf's old frame is the unit head.
            debug_assert_eq!(old, unit.head, "unit/leaf correspondence broken");
        }
        ctx.mem
            .free_rec(unit.head, &mut ctx.recorder)
            .expect("unit is live");
        let bytes = unit.pages() * geo.base_bytes();
        out.bytes_copied += bytes;
        out.migrated_units += 1;
        ctx.record(Event::CompactionMove { bytes });
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::{FrameUse, PhysicalMemory};
    use trident_types::{AsId, PageGeometry, Vpn};
    use trident_vm::{AddressSpace, VmaKind};

    /// Builds a context where every region is half-used by 4KB user pages
    /// of a single process, leaving no free giant chunk.
    fn fragmented_setup(regions: u64) -> (MmContext, SpaceSet) {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(
            geo,
            regions * geo.base_pages(PageSize::new(2)),
        ));
        let mut space = AddressSpace::new(AsId::new(1), geo);
        let total = regions * 64;
        space.mmap_at(Vpn::new(0), total, VmaKind::Anon).unwrap();
        // Allocate every frame as a mapped single-page unit, then free all
        // but one page per 8-page block: every huge (order-3) and giant
        // chunk is broken, holes are order <= 2.
        let mut held = Vec::new();
        for p in 0..total {
            let vpn = Vpn::new(p);
            let pfn = ctx
                .mem
                .allocate_order(
                    0,
                    FrameUse::User,
                    Some(trident_phys::MappingOwner {
                        asid: AsId::new(1),
                        vpn,
                    }),
                )
                .unwrap();
            space
                .page_table_mut()
                .map(vpn, pfn, PageSize::BASE)
                .unwrap();
            held.push((vpn, pfn));
        }
        for (vpn, pfn) in held {
            if vpn.raw() % 8 != 0 {
                space.page_table_mut().unmap(vpn).unwrap();
                ctx.mem.free(pfn).unwrap();
            }
        }
        assert!(!ctx.mem.has_free(PageSize::new(2)));
        let mut spaces = SpaceSet::new();
        spaces.insert(space);
        (ctx, spaces)
    }

    #[test]
    fn smart_compaction_creates_a_giant_chunk() {
        let (mut ctx, mut spaces) = fragmented_setup(8);
        let mut c = Compactor::new(CompactionKind::Smart);
        let out = c.compact(&mut ctx, &mut spaces, PageSize::new(2));
        assert!(out.success);
        assert!(ctx.mem.has_free(PageSize::new(2)));
        assert!(out.bytes_copied > 0);
        ctx.mem.assert_consistent();
    }

    #[test]
    fn normal_compaction_also_succeeds_but_copies_at_least_as_much() {
        let (mut ctx_s, mut spaces_s) = fragmented_setup(8);
        let out_smart = Compactor::new(CompactionKind::Smart).compact(
            &mut ctx_s,
            &mut spaces_s,
            PageSize::new(2),
        );
        let (mut ctx_n, mut spaces_n) = fragmented_setup(8);
        let out_normal = Compactor::new(CompactionKind::Normal).compact(
            &mut ctx_n,
            &mut spaces_n,
            PageSize::new(2),
        );
        assert!(out_smart.success && out_normal.success);
        // In a uniform checkerboard they copy similar amounts; smart never
        // copies more.
        assert!(out_smart.bytes_copied <= out_normal.bytes_copied);
    }

    #[test]
    fn smart_picks_the_emptiest_region_when_occupancy_differs() {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, 4 * 64));
        let mut space = AddressSpace::new(AsId::new(1), geo);
        space.mmap_at(Vpn::new(0), 4 * 64, VmaKind::Anon).unwrap();
        let spaces_alloc =
            |ctx: &mut MmContext, space: &mut AddressSpace, region: u64, pages: u64| {
                for i in 0..pages {
                    let vpn = Vpn::new(region * 64 + i * 2); // every other page
                    let pfn = ctx
                        .mem
                        .allocate_in_region(
                            region,
                            0,
                            FrameUse::User,
                            Some(trident_phys::MappingOwner {
                                asid: AsId::new(1),
                                vpn,
                            }),
                        )
                        .unwrap();
                    space
                        .page_table_mut()
                        .map(vpn, pfn, PageSize::BASE)
                        .unwrap();
                }
            };
        // Region 0 nearly full (30 pages), region 1 nearly empty (2 pages),
        // regions 2-3 moderately used so nothing is free at giant order.
        spaces_alloc(&mut ctx, &mut space, 0, 30);
        spaces_alloc(&mut ctx, &mut space, 1, 2);
        spaces_alloc(&mut ctx, &mut space, 2, 16);
        spaces_alloc(&mut ctx, &mut space, 3, 16);
        assert!(!ctx.mem.has_free(PageSize::new(2)));
        let mut spaces = SpaceSet::new();
        spaces.insert(space);
        let out =
            Compactor::new(CompactionKind::Smart).compact(&mut ctx, &mut spaces, PageSize::new(2));
        assert!(out.success);
        // Freeing region 1 takes 2 page copies; anything else would take
        // far more.
        assert_eq!(out.migrated_units, 2);
        assert_eq!(out.bytes_copied, 2 * geo.base_bytes());
    }

    #[test]
    fn unmovable_region_is_never_selected_by_smart() {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, 2 * 64));
        // One kernel page in each region: nothing can be freed.
        ctx.mem
            .allocate_in_region(0, 0, FrameUse::Kernel, None)
            .unwrap();
        ctx.mem
            .allocate_in_region(1, 0, FrameUse::Kernel, None)
            .unwrap();
        // Consume the rest so no free giant chunk exists.
        while ctx.mem.allocate_order(2, FrameUse::User, None).is_ok() {}
        let mut spaces = SpaceSet::new();
        let out =
            Compactor::new(CompactionKind::Smart).compact(&mut ctx, &mut spaces, PageSize::new(2));
        assert!(!out.success);
        assert_eq!(out.bytes_copied, 0);
    }

    #[test]
    fn normal_compaction_wastes_copies_on_unmovable_frames() {
        let geo = PageGeometry::TINY;
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, 2 * 64));
        // Both regions: a movable page-cache page followed by a pinned
        // kernel page — neither region can ever be freed.
        for r in 0..2 {
            ctx.mem
                .allocate_in_region(r, 0, FrameUse::PageCache, None)
                .unwrap();
            ctx.mem
                .allocate_in_region(r, 0, FrameUse::Kernel, None)
                .unwrap();
        }
        let mut spaces = SpaceSet::new();
        let mut c = Compactor::new(CompactionKind::Normal);
        let out = c.compact(&mut ctx, &mut spaces, PageSize::new(2));
        // It copied page-cache pages before hitting the kernel pages —
        // wasted work, both regions stay pinned. Smart compaction would
        // have copied nothing (see unmovable_region_is_never_selected).
        assert!(out.bytes_copied >= geo.base_bytes());
        assert!(!out.success);
    }

    #[test]
    fn compaction_for_huge_chunks_uses_normal_path() {
        let (mut ctx, mut spaces) = fragmented_setup(4);
        let mut c = Compactor::new(CompactionKind::Smart);
        // Exhaust huge chunks by checkerboard: order-3 blocks are... the
        // checkerboard leaves order-2 holes, so no order-3 (huge) chunk.
        assert!(!ctx.mem.has_free(PageSize::new(1)));
        let out = c.compact(&mut ctx, &mut spaces, PageSize::new(1));
        assert!(out.success);
        assert!(ctx.mem.has_free(PageSize::new(1)));
    }

    #[test]
    fn page_table_follows_migrated_frames() {
        let (mut ctx, mut spaces) = fragmented_setup(4);
        let before: Vec<_> = spaces
            .get(AsId::new(1))
            .unwrap()
            .page_table()
            .mappings_in(Vpn::new(0), 4 * 64);
        Compactor::new(CompactionKind::Smart).compact(&mut ctx, &mut spaces, PageSize::new(2));
        let space = spaces.get(AsId::new(1)).unwrap();
        // Every previously mapped page is still mapped, and its frame's
        // reverse map agrees with the page table.
        for rec in &before {
            let t = space.page_table().translate(rec.vpn).expect("still mapped");
            let unit = ctx.mem.unit_at(t.head_pfn).expect("frame backs a unit");
            assert_eq!(unit.owner.expect("user unit has an owner").vpn, rec.vpn);
        }
        ctx.mem.assert_consistent();
    }
}
