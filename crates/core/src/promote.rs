//! Large-page promotion: the Figure 5 algorithm.
//!
//! Trident extends THP's `khugepaged` daemon: it scans a candidate
//! process's virtual address space looking for 1GB-mappable ranges mapped
//! with smaller pages and promotes them, requesting (smart) compaction when
//! no free 1GB chunk exists; when even compaction fails, it falls back to
//! promoting the constituent 2MB chunks — Trident's "use every page size"
//! policy. Plain THP is the same machine restricted to 2MB targets with
//! normal compaction; HawkEye additionally orders candidates by access
//! frequency.

use core::fmt;
use std::error::Error;

use trident_obs::{Event, InjectSite, SpanKind};
use trident_phys::{FrameUse, MappingOwner};
use trident_types::{AsId, DenseBitSet, PageSize, TridentError, Vpn, MAX_RUNGS};
use trident_vm::{promotion_candidates, AddressSpace};

use crate::{CompactionKind, Compactor, MmContext, PolicyHint, SpaceSet, TickOutcome};

/// How the data lands in the newly promoted page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PromotionStyle {
    /// Copy the contents of the old pages into the new large page (native
    /// execution, and the guest's only option without paravirtualization).
    Copy,
    /// Trident_pv: exchange gPA→hPA mappings instead of copying the
    /// 2MB-mapped portions, batching all exchanges into one hypercall (§6).
    PvBatched,
    /// Trident_pv without batching: one hypercall per exchanged page.
    PvUnbatched,
}

/// Why a promotion attempt did not happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteError {
    /// No contiguous physical chunk of the target size was available.
    NoContiguity,
    /// The chunk is not promotable (already at the target size, or empty).
    NotACandidate,
}

impl fmt::Display for PromoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PromoteError::NoContiguity => f.write_str("no contiguous physical chunk for promotion"),
            PromoteError::NotACandidate => f.write_str("chunk is not promotable"),
        }
    }
}

impl Error for PromoteError {}

/// What a single chunk promotion cost and produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromoteOutcome {
    /// Daemon CPU time in nanoseconds.
    pub ns: u64,
    /// Bytes physically copied.
    pub bytes_copied: u64,
    /// gPA→hPA pairs exchanged instead of copied (pv styles only).
    pub pairs_exchanged: u64,
    /// Base pages newly backed that the application never touched.
    pub bloat_pages: u64,
}

/// A promoted chunk, remembered so bloat-recovery can demote it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotedChunk {
    /// Owning address space.
    pub asid: AsId,
    /// Chunk head page.
    pub head: Vpn,
    /// Size it was promoted to.
    pub size: PageSize,
    /// Untouched base pages newly backed by the promotion.
    pub bloat_pages: u64,
}

/// Promotes the `target`-aligned chunk at `head` in space `asid` to one
/// `target` page: allocates the destination (preferring the pre-zeroed
/// pool for giant pages), unmaps the constituent smaller mappings, installs
/// the large leaf, frees the old frames, and accounts copy/exchange/zero
/// costs per `style`.
///
/// # Errors
///
/// [`PromoteError::NoContiguity`] when no frame of `target` size could be
/// allocated; [`PromoteError::NotACandidate`] when the chunk is already at
/// `target` size or has nothing mapped.
///
/// # Panics
///
/// Panics if `asid` is not in `spaces` or `head` is not `target`-aligned.
pub fn promote_chunk(
    ctx: &mut MmContext,
    spaces: &mut SpaceSet,
    asid: AsId,
    head: Vpn,
    target: PageSize,
    style: PromotionStyle,
) -> Result<PromoteOutcome, PromoteError> {
    let geo = ctx.geometry();
    let span = geo.base_pages(target);
    let space = spaces.get_mut(asid).expect("candidate space exists");
    let profile = space.page_table().chunk_profile(head, target);
    let already_at_target = target.is_base()
        || profile.mapped[target.rung()..]
            .iter()
            .any(|&pages| pages > 0);
    if already_at_target || profile.mapped_total() == 0 {
        return Err(PromoteError::NotACandidate);
    }

    // Destination frame; for the ladder's top rung prefer an async-zeroed
    // block from the pool.
    let owner = MappingOwner { asid, vpn: head };
    let (dst, prepared) = if target == geo.largest() {
        match ctx.zero_pool.take_prepared_rec(
            &mut ctx.mem,
            FrameUse::User,
            Some(owner),
            &mut ctx.recorder,
        ) {
            Some(pfn) => (pfn, true),
            None => {
                match ctx
                    .mem
                    .allocate_rec(target, FrameUse::User, Some(owner), &mut ctx.recorder)
                {
                    Ok(pfn) => (pfn, false),
                    Err(_) => return Err(PromoteError::NoContiguity),
                }
            }
        }
    } else {
        match ctx
            .mem
            .allocate_rec(target, FrameUse::User, Some(owner), &mut ctx.recorder)
        {
            Ok(pfn) => (pfn, false),
            Err(_) => return Err(PromoteError::NoContiguity),
        }
    };

    // Replace the small mappings with the single large leaf.
    let old = space.page_table().mappings_in(head, span);
    for m in &old {
        space
            .page_table_mut()
            .unmap(m.vpn)
            .expect("enumerated leaf");
    }
    space
        .page_table_mut()
        .map(head, dst, target)
        .expect("span was emptied");
    let old_heads: Vec<_> = old.iter().map(|m| (m.pfn, m.size, m.vpn)).collect();
    for (pfn, size, vpn) in old_heads {
        ctx.mem
            .free_rec(pfn, &mut ctx.recorder)
            .unwrap_or_else(|e| {
                panic!(
                    "old frame was live: {e}; leaf size {size:?} vpn {vpn} unit_at {:?} head_of {:?}",
                    ctx.mem.unit_at(pfn),
                    ctx.mem.frames().head_of(pfn),
                )
            });
    }

    // Cost accounting. Only pages mapped by natural table-level leaves at
    // PMD level or above can have their gPA→hPA mappings exchanged; base
    // pages and group leaves (NAPOT / contiguous spans are just runs of
    // PTEs) are copied as before (§6).
    let base_bytes = geo.base_bytes();
    let mut exchangeable_pages = 0;
    let mut pairs_available = 0;
    for size in geo.rungs() {
        if size < target && geo.level(size) >= 2 && !geo.is_group(size) {
            exchangeable_pages += profile.mapped[size.rung()];
            pairs_available += profile.mapped[size.rung()] / geo.base_pages(size);
        }
    }
    let huge_bytes = exchangeable_pages * base_bytes;
    let small_bytes = (profile.mapped_total() - exchangeable_pages) * base_bytes;
    let (copied, pairs, move_ns) = match style {
        PromotionStyle::Copy => {
            let bytes = huge_bytes + small_bytes;
            (bytes, 0, ctx.cost.copy_ns(bytes))
        }
        PromotionStyle::PvBatched | PromotionStyle::PvUnbatched => {
            // Only the table-level large-mapped portions benefit from the
            // exchange; base mappings are copied as before (§6).
            let pairs = pairs_available;
            let exchange_ns = match style {
                PromotionStyle::PvBatched => ctx.cost.pv_batched_exchange_ns(pairs),
                _ => ctx.cost.pv_unbatched_exchange_ns(pairs),
            };
            if huge_bytes > 0 {
                ctx.span_begin(SpanKind::PvExchange);
                ctx.record(Event::PvExchange {
                    pairs,
                    bytes: huge_bytes,
                    batched: style == PromotionStyle::PvBatched,
                });
                ctx.span_end(SpanKind::PvExchange, exchange_ns);
            }
            (
                small_bytes,
                pairs,
                exchange_ns + ctx.cost.copy_ns(small_bytes),
            )
        }
    };
    // Untouched parts of the new page must be zero; prepared giant blocks
    // already are.
    let zero_ns = if prepared {
        0
    } else {
        ctx.cost.zero_ns(profile.unmapped * base_bytes)
    };
    let ns = move_ns + zero_ns + ctx.cost.tlb_shootdown_ns;

    ctx.record(Event::Promote {
        size: target,
        bytes_copied: copied,
        bloat_pages: profile.unmapped,
    });

    Ok(PromoteOutcome {
        ns,
        bytes_copied: copied,
        pairs_exchanged: pairs,
        bloat_pages: profile.unmapped,
    })
}

/// Demotes a previously promoted chunk to recover its bloat: the large
/// leaf is torn down and only the touched portion is re-mapped with base
/// pages (HawkEye's bloat-recovery technique, which §7 borrows).
///
/// Returns the number of base pages recovered.
pub fn demote_chunk(ctx: &mut MmContext, spaces: &mut SpaceSet, chunk: &PromotedChunk) -> u64 {
    let geo = ctx.geometry();
    let Some(space) = spaces.get_mut(chunk.asid) else {
        return 0;
    };
    // The chunk may have been unmapped or re-promoted since.
    let Some(t) = space.page_table().translate(chunk.head) else {
        return 0;
    };
    if t.head_vpn != chunk.head || t.size != chunk.size {
        return 0;
    }
    let span = geo.base_pages(chunk.size);
    space
        .page_table_mut()
        .unmap(chunk.head)
        .expect("leaf exists");
    ctx.mem
        .free_rec(t.head_pfn, &mut ctx.recorder)
        .expect("frame was live");
    // Re-back only the touched portion with base pages. (In the real
    // kernel this is an in-place split; the buddy model reallocates, which
    // is equivalent for accounting purposes.)
    let touched = span - chunk.bloat_pages.min(span);
    let mut restored = 0;
    for i in 0..touched {
        let vpn = chunk.head + i;
        let owner = MappingOwner {
            asid: chunk.asid,
            vpn,
        };
        let Ok(pfn) = ctx.mem.allocate_rec(
            PageSize::BASE,
            FrameUse::User,
            Some(owner),
            &mut ctx.recorder,
        ) else {
            break;
        };
        space
            .page_table_mut()
            .map(vpn, pfn, PageSize::BASE)
            .expect("span was emptied");
        restored += 1;
    }
    let recovered = span - restored;
    ctx.record(Event::Demote {
        size: chunk.size,
        recovered_pages: chunk.bloat_pages.min(span),
    });
    recovered
}

/// Configuration of the promotion daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromoterConfig {
    /// Promote to 1GB pages (Trident).
    pub use_giant: bool,
    /// Promote to 2MB pages (THP, HawkEye, Trident; off for
    /// Trident-1Gonly).
    pub use_huge: bool,
    /// Compaction algorithm used when contiguity is missing.
    pub compaction: CompactionKind,
    /// How promoted data reaches the new page.
    pub style: PromotionStyle,
    /// Maximum promotions attempted per tick.
    pub chunk_budget: usize,
    /// Order candidates by accessed-bit density (HawkEye) instead of
    /// address order (Linux).
    pub order_by_access: bool,
}

impl PromoterConfig {
    /// THP's `khugepaged`: 2MB only, normal compaction, address order.
    #[must_use]
    pub fn thp() -> PromoterConfig {
        PromoterConfig {
            use_giant: false,
            use_huge: true,
            compaction: CompactionKind::Normal,
            style: PromotionStyle::Copy,
            chunk_budget: 16,
            order_by_access: false,
        }
    }

    /// Trident's promoter: all sizes, smart compaction.
    #[must_use]
    pub fn trident() -> PromoterConfig {
        PromoterConfig {
            use_giant: true,
            use_huge: true,
            compaction: CompactionKind::Smart,
            style: PromotionStyle::Copy,
            chunk_budget: 16,
            order_by_access: false,
        }
    }

    /// A validating builder seeded from this configuration.
    #[must_use]
    pub fn builder(self) -> PromoterConfigBuilder {
        PromoterConfigBuilder { config: self }
    }
}

/// Validating builder for [`PromoterConfig`].
///
/// Seed it from one of the named presets and override what the experiment
/// varies; [`build`](PromoterConfigBuilder::build) rejects configurations
/// the daemon cannot run (zero chunk budget, no target page size at all).
///
/// # Examples
///
/// ```
/// use trident_core::{PromoterConfig, PromotionStyle};
///
/// let config = PromoterConfig::trident()
///     .builder()
///     .style(PromotionStyle::PvBatched)
///     .chunk_budget(8)
///     .build()?;
/// assert_eq!(config.chunk_budget, 8);
/// assert!(PromoterConfig::trident().builder().chunk_budget(0).build().is_err());
/// # Ok::<(), trident_types::TridentError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PromoterConfigBuilder {
    config: PromoterConfig,
}

impl PromoterConfigBuilder {
    /// Enables or disables 1GB promotion.
    #[must_use]
    pub fn use_giant(mut self, on: bool) -> Self {
        self.config.use_giant = on;
        self
    }

    /// Enables or disables 2MB promotion.
    #[must_use]
    pub fn use_huge(mut self, on: bool) -> Self {
        self.config.use_huge = on;
        self
    }

    /// Sets the compaction algorithm.
    #[must_use]
    pub fn compaction(mut self, kind: CompactionKind) -> Self {
        self.config.compaction = kind;
        self
    }

    /// Sets how promoted data reaches the new page.
    #[must_use]
    pub fn style(mut self, style: PromotionStyle) -> Self {
        self.config.style = style;
        self
    }

    /// Sets the per-tick promotion budget.
    #[must_use]
    pub fn chunk_budget(mut self, budget: usize) -> Self {
        self.config.chunk_budget = budget;
        self
    }

    /// Orders candidates by accessed-bit density (HawkEye).
    #[must_use]
    pub fn order_by_access(mut self, on: bool) -> Self {
        self.config.order_by_access = on;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`TridentError::InvalidConfig`] when the chunk budget is zero or no
    /// target page size is enabled.
    pub fn build(self) -> Result<PromoterConfig, TridentError> {
        if self.config.chunk_budget == 0 {
            return Err(TridentError::InvalidConfig {
                field: "chunk_budget",
                reason: "must be nonzero (the daemon would never promote)",
            });
        }
        if !self.config.use_giant && !self.config.use_huge {
            return Err(TridentError::InvalidConfig {
                field: "use_giant/use_huge",
                reason: "at least one target page size must be enabled",
            });
        }
        Ok(self.config)
    }
}

/// Per-space promotion-candidate index, kept current from the page table's
/// dirty-chunk feed instead of rescanning the whole address space each
/// tick. A full `promotion_candidates` enumeration primes it once; after
/// that, only chunks whose mappings or covering VMAs changed are
/// re-examined — O(changed chunks) per tick.
///
/// Candidates are packed bitmaps keyed by *chunk index* (head VPN divided
/// by the chunk span), so insert/remove during dirty replay are single bit
/// flips and enumeration is already in address order.
#[derive(Debug, Clone)]
struct CandidateCache {
    /// Chunk indices promotable to each rung, indexed by
    /// [`PageSize::rung`] (the base rung’s slot stays empty).
    sets: [DenseBitSet; MAX_RUNGS],
    /// Whether the priming scan has run.
    primed: bool,
}

impl Default for CandidateCache {
    fn default() -> Self {
        CandidateCache {
            sets: std::array::from_fn(|_| DenseBitSet::default()),
            primed: false,
        }
    }
}

/// Exponential-backoff state for one compaction target size.
///
/// Replaces the old per-tick "hopeless" latch. Within a tick the behavior
/// is unchanged (one failed compaction stops retries for the rest of the
/// tick); across ticks, consecutive failing ticks impose a doubling
/// sit-out window — retry after 1 tick, then 2, 4, … up to
/// [`MAX_DELAY_TICKS`](CompactionBackoff::MAX_DELAY_TICKS) — instead of
/// burning a full compaction scan every tick on a machine with no movable
/// contiguity. Observing contiguity (a free chunk, or a compaction
/// success) resets the window, so promotion resumes on the next tick once
/// contiguity returns.
///
/// The cross-tick window only arms when a fault plan is active
/// (`note_failure(true)`): the repository's experiment outputs are
/// calibrated against the retry-every-tick daemon schedule, so chaos runs
/// get the full backoff while baseline runs stay bit-identical.
#[derive(Debug, Clone, Copy)]
struct CompactionBackoff {
    /// Whether a compaction for this size already failed this tick.
    failed_this_tick: bool,
    /// Ticks left to sit out before compaction may be retried.
    skip_ticks: u32,
    /// Sit-out window to impose on the next failure (doubles, capped).
    next_delay: u32,
}

impl CompactionBackoff {
    /// Longest sit-out between compaction retries, in ticks.
    const MAX_DELAY_TICKS: u32 = 32;

    fn new() -> CompactionBackoff {
        CompactionBackoff {
            failed_this_tick: false,
            // A window of 1 means "retry next tick" — exactly the old
            // latch's behavior for the first failure.
            skip_ticks: 0,
            next_delay: 1,
        }
    }

    /// Opens a new tick: clears the intra-tick latch and burns one tick
    /// of any pending sit-out window.
    fn tick_start(&mut self) {
        self.failed_this_tick = false;
        self.skip_ticks = self.skip_ticks.saturating_sub(1);
    }

    /// Whether compaction may be attempted now.
    fn ready(&self) -> bool {
        !self.failed_this_tick && self.skip_ticks == 0
    }

    /// Whether the *cross-tick* sit-out window (not the intra-tick latch)
    /// is suppressing compaction this tick.
    fn sitting_out(&self) -> bool {
        self.skip_ticks > 0 && !self.failed_this_tick
    }

    /// Notes a failed compaction: latches the rest of the tick and, when
    /// `cross_tick` is set, arms the next (doubled) sit-out window.
    fn note_failure(&mut self, cross_tick: bool) {
        self.failed_this_tick = true;
        if cross_tick {
            self.skip_ticks = self.next_delay;
            self.next_delay = (self.next_delay * 2).min(Self::MAX_DELAY_TICKS);
        }
    }

    /// Notes observed contiguity: the situation changed, so retry eagerly
    /// again.
    fn note_contiguity(&mut self) {
        self.skip_ticks = 0;
        self.next_delay = 1;
    }
}

/// The `khugepaged`-style background promoter.
#[derive(Debug, Clone)]
pub struct Promoter {
    config: PromoterConfig,
    compactor: Compactor,
    next_space: usize,
    /// Compaction backoff per target rung, indexed by [`PageSize::rung`].
    backoffs: [CompactionBackoff; MAX_RUNGS],
    /// Candidate indexes, a dense arena indexed by raw address-space id.
    caches: Vec<Option<CandidateCache>>,
    /// Reusable candidate-head buffer for the per-tick scan loops.
    head_buf: Vec<Vpn>,
    /// Reusable dirty-chunk drain buffer for candidate refresh.
    dirty_buf: Vec<u64>,
}

/// Whether the `size`-aligned chunk at `head` is currently worth promoting
/// — the single-chunk version of `promotion_candidates`' filter: the chunk
/// must lie fully inside one VMA, not already be mapped at (or above) the
/// target size, and have something mapped in it.
fn is_candidate(space: &AddressSpace, head: Vpn, size: PageSize) -> bool {
    let geo = space.geometry();
    let span = geo.base_pages(size);
    let Some(vma) = space.vma_containing(head) else {
        return false;
    };
    if head.raw() + span > vma.end().raw() {
        return false;
    }
    let profile = space.page_table().chunk_profile(head, size);
    let already = size.is_base() || profile.mapped[size.rung()..].iter().any(|&pages| pages > 0);
    !already && profile.mapped_total() > 0
}

impl Promoter {
    /// Creates a promoter with the given configuration.
    #[must_use]
    pub fn new(config: PromoterConfig) -> Promoter {
        Promoter {
            config,
            compactor: Compactor::new(config.compaction),
            next_space: 0,
            backoffs: [CompactionBackoff::new(); MAX_RUNGS],
            caches: Vec::new(),
            head_buf: Vec::new(),
            dirty_buf: Vec::new(),
        }
    }

    fn cache_slot(&mut self, asid: AsId) -> &mut Option<CandidateCache> {
        let idx = usize::try_from(asid.raw()).expect("asid fits usize");
        if idx >= self.caches.len() {
            self.caches.resize_with(idx + 1, || None);
        }
        &mut self.caches[idx]
    }

    fn cache(&self, asid: AsId) -> Option<&CandidateCache> {
        self.caches
            .get(usize::try_from(asid.raw()).expect("asid fits usize"))
            .and_then(Option::as_ref)
    }

    /// Brings the candidate index for `asid` up to date: a full priming
    /// scan on first contact, then only the chunks drained from the page
    /// table's dirty feed. Zero-alloc in steady state: the drain buffer is
    /// reused and candidate membership updates are bit flips.
    fn refresh_candidates(&mut self, spaces: &mut SpaceSet, asid: AsId) {
        let mut dirty = std::mem::take(&mut self.dirty_buf);
        let Some(space) = spaces.get_mut(asid) else {
            *self.cache_slot(asid) = None;
            self.dirty_buf = dirty;
            return;
        };
        let geo = space.geometry();
        let top_span = geo.base_pages(geo.largest());
        let cache = self.cache_slot(asid).get_or_insert_with(Default::default);
        if !cache.primed {
            // The priming enumeration subsumes any dirty backlog.
            space.page_table_mut().drain_dirty_chunks_into(&mut dirty);
            for size in geo.rungs().filter(|s| !s.is_base()) {
                let span = geo.base_pages(size);
                cache.sets[size.rung()] = promotion_candidates(space, size)
                    .into_iter()
                    .map(|(head, _)| head.raw() / span)
                    .collect();
            }
            cache.primed = true;
            self.dirty_buf = dirty;
            return;
        }
        // The dirty feed is keyed by top-rung chunks; re-examine every
        // sub-chunk of each dirty chunk at every promotable rung.
        space.page_table_mut().drain_dirty_chunks_into(&mut dirty);
        for &gi in &dirty {
            let head = gi * top_span;
            for size in geo.rungs().filter(|s| !s.is_base()) {
                let span = geo.base_pages(size);
                for sub_head in (head..head + top_span).step_by(span as usize) {
                    if is_candidate(space, Vpn::new(sub_head), size) {
                        cache.sets[size.rung()].insert(sub_head / span);
                    } else {
                        cache.sets[size.rung()].remove(sub_head / span);
                    }
                }
            }
        }
        self.dirty_buf = dirty;
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> PromoterConfig {
        self.config
    }

    /// One daemon tick: select the next candidate process weighted
    /// round-robin and scan its address space per Figure 5. Returns the
    /// tick summary and the chunks promoted (for bloat-recovery
    /// registries).
    ///
    /// The rotation consults the context's [`TenantDirectory`]: each round
    /// visits every space in id order, `weight` times each, so a tenant
    /// with weight 2 gets twice the daemon's attention. An empty directory
    /// (or all-ones weights) degenerates to the legacy plain rotation.
    ///
    /// [`TenantDirectory`]: crate::TenantDirectory
    pub fn tick(
        &mut self,
        ctx: &mut MmContext,
        spaces: &mut SpaceSet,
    ) -> (TickOutcome, Vec<PromotedChunk>) {
        let ids = spaces.ids();
        if ids.is_empty() {
            return (TickOutcome::default(), Vec::new());
        }
        let schedule: Vec<AsId> = ids
            .iter()
            .flat_map(|&a| std::iter::repeat_n(a, ctx.tenants.weight(a) as usize))
            .collect();
        let asid = schedule[self.next_space % schedule.len()];
        self.next_space = self.next_space.wrapping_add(1);
        self.scan_space(ctx, spaces, asid)
    }

    /// Scans one space per Figure 5, consulting the owning tenant's
    /// [`PolicyHint`] when the space is registered: an opted-out tenant is
    /// skipped entirely, a preferred page size masks the other promotion
    /// pass, a budget override replaces the daemon-wide one, and pinned
    /// ranges go to the front of the candidate order. While scanning, the
    /// context's attribution scope is the owning tenant, so daemon work
    /// lands in that tenant's counters.
    fn scan_space(
        &mut self,
        ctx: &mut MmContext,
        spaces: &mut SpaceSet,
        asid: AsId,
    ) -> (TickOutcome, Vec<PromotedChunk>) {
        let policy = ctx.tenants.policy(asid).cloned();
        let prev_scope = ctx.tenant_scope();
        if let Some(p) = &policy {
            ctx.set_tenant_scope(Some(p.tenant));
        }
        if policy.as_ref().is_some_and(|p| p.hint.promotion_opt_out) {
            ctx.set_tenant_scope(prev_scope);
            return (TickOutcome::default(), Vec::new());
        }
        let hint = policy.as_ref().map(|p| p.hint.clone());
        let preferred = hint.as_ref().and_then(|h| h.preferred_size);
        let geo = ctx.geometry();
        // The promotion ladder: every rung above base, largest first.
        // `use_giant` gates the top rung, `use_huge` the intermediate
        // ones; a tenant preference keeps only the preferred rung, and
        // preferring the base size declines promotion entirely (it would
        // only create larger pages).
        let ladder: Vec<PageSize> = (0..geo.rung_count())
            .rev()
            .map(PageSize::new)
            .filter(|&s| !s.is_base())
            .filter(|&s| {
                if s == geo.largest() {
                    self.config.use_giant
                } else {
                    self.config.use_huge
                }
            })
            .filter(|&s| preferred.is_none_or(|p| p == s))
            .collect();

        let mut out = TickOutcome::default();
        let mut promoted = Vec::new();
        let mut budget = policy
            .as_ref()
            .and_then(|p| p.chunk_budget)
            .unwrap_or(self.config.chunk_budget);
        for backoff in &mut self.backoffs {
            backoff.tick_start();
        }
        ctx.span_begin(SpanKind::PromoScan);

        // Scanning the VA space costs daemon CPU proportional to its size.
        // The *simulated* cost stays the full-scan cost the paper models
        // (khugepaged really does walk the address space); only the
        // simulator's own work is incremental.
        let scan_pages = spaces
            .get(asid)
            .map(|s| s.total_vma_pages())
            .unwrap_or_default();
        out.daemon_ns += scan_pages * ctx.cost.scan_page_ns;

        self.refresh_candidates(spaces, asid);

        // Once compaction fails, retrying it for every remaining candidate
        // in the same tick is pointless (and expensive): the machine-wide
        // contiguity situation has not changed. Across ticks the backoff
        // additionally imposes a doubling sit-out window (§ graceful
        // degradation), re-armed as soon as contiguity is observed again.
        //
        // One pass per ladder rung, largest first. When contiguity for a
        // chunk cannot be had even after compaction, Figure 5's right-hand
        // branch falls back to backing that chunk with the next rung down.
        let mut heads = std::mem::take(&mut self.head_buf);
        for (idx, &target) in ladder.iter().enumerate() {
            if idx > 0 {
                // Fold in the previous pass's promotions so this pass sees
                // the same candidate set a fresh enumeration would.
                self.refresh_candidates(spaces, asid);
            }
            self.ordered_candidates_into(spaces, asid, target, hint.as_ref(), &mut heads);
            for &head in &heads {
                if budget == 0 {
                    break;
                }
                budget -= 1;
                let have =
                    self.try_promote_at(ctx, spaces, asid, head, target, &mut out, &mut promoted);
                if !have {
                    if let Some(&fallback) = ladder.get(idx + 1) {
                        let span = geo.base_pages(target);
                        let sub = geo.base_pages(fallback);
                        for k in 0..(span / sub) {
                            self.try_promote_at(
                                ctx,
                                spaces,
                                asid,
                                head + k * sub,
                                fallback,
                                &mut out,
                                &mut promoted,
                            );
                        }
                    }
                }
            }
        }
        self.head_buf = heads;

        ctx.span_end(SpanKind::PromoScan, out.daemon_ns);
        ctx.set_tenant_scope(prev_scope);
        (out, promoted)
    }

    /// Fills `out` (cleared first) with candidate chunk heads for promotion
    /// to `size`, in scan order (address order, or hottest-first for
    /// HawkEye), read from the incrementally maintained index. A tenant
    /// hint's pinned ranges are moved to the front (stably, so the
    /// access/address order is preserved within each group). Reuses the
    /// buffer's storage — the scan loop's head enumeration stays
    /// zero-alloc in steady state.
    fn ordered_candidates_into(
        &self,
        spaces: &SpaceSet,
        asid: AsId,
        size: PageSize,
        hint: Option<&PolicyHint>,
        out: &mut Vec<Vpn>,
    ) {
        out.clear();
        let Some(space) = spaces.get(asid) else {
            return;
        };
        let Some(cache) = self.cache(asid) else {
            return;
        };
        let geo = space.geometry();
        let span = geo.base_pages(size);
        if size.is_base() {
            return;
        }
        let set = &cache.sets[size.rung()];
        out.extend(set.iter().map(|chunk| Vpn::new(chunk * span)));
        if self.config.order_by_access {
            out.sort_by_key(|head| {
                std::cmp::Reverse(space.page_table().accessed_leaves_in(*head, span))
            });
        }
        if let Some(h) = hint {
            if !h.pinned.is_empty() {
                // Stable, so pinning dominates without scrambling the
                // base ordering inside each group.
                out.sort_by_key(|head| !h.pins(*head, span));
            }
        }
    }

    /// Attempts one promotion of the chunk at `head` to `target`: handles
    /// fault injection, contiguity (with per-rung compaction backoff) and
    /// accounting. Returns whether contiguity for the target was available
    /// — `false` is the Figure 5 signal to fall back to the next rung.
    #[allow(clippy::too_many_arguments)]
    fn try_promote_at(
        &mut self,
        ctx: &mut MmContext,
        spaces: &mut SpaceSet,
        asid: AsId,
        head: Vpn,
        target: PageSize,
        out: &mut TickOutcome,
        promoted: &mut Vec<PromotedChunk>,
    ) -> bool {
        let top = ctx.geometry().largest();
        if ctx.inject(InjectSite::Promotion) {
            ctx.record(Event::PromotionDeferred { size: target });
            return true; // a deferral is not a contiguity failure
        }
        let backoff = &mut self.backoffs[target.rung()];
        let mut have = ctx.mem.has_free(target);
        if have {
            backoff.note_contiguity();
        } else if backoff.ready() {
            out.compaction_runs += 1;
            let c = self.compactor.compact(ctx, spaces, target);
            out.daemon_ns += c.ns;
            have = c.success;
            let backoff = &mut self.backoffs[target.rung()];
            if have {
                backoff.note_contiguity();
            } else {
                backoff.note_failure(ctx.fault.enabled());
            }
        } else if backoff.sitting_out() {
            ctx.record(Event::PromotionDeferred { size: target });
        }
        // Table 4's counters track allocation attempts for the top rung.
        if target == top {
            ctx.record_giant_attempt(crate::AllocSite::Promotion, !have);
        }
        if !have {
            return false;
        }
        // The pv mapping exchange only pays on the top-rung promotion;
        // smaller targets always copy (§6).
        let style = if target == top {
            self.config.style
        } else {
            PromotionStyle::Copy
        };
        match promote_chunk(ctx, spaces, asid, head, target, style) {
            Ok(p) => {
                out.daemon_ns += p.ns;
                out.promotions += 1;
                promoted.push(PromotedChunk {
                    asid,
                    head,
                    size: target,
                    bloat_pages: p.bloat_pages,
                });
                true
            }
            // The chunk compaction produced was raced away (e.g. by
            // another promotion): report a contiguity failure so the
            // caller can fall back to the next rung down.
            Err(PromoteError::NoContiguity) => false,
            Err(PromoteError::NotACandidate) => true,
        }
    }
}

/// Demotes registered chunks, biggest bloat first, while memory pressure
/// persists (free fraction below `low_watermark`). Returns the tick
/// summary.
pub fn recover_bloat(
    ctx: &mut MmContext,
    spaces: &mut SpaceSet,
    registry: &mut Vec<PromotedChunk>,
    low_watermark: f64,
) -> TickOutcome {
    let mut out = TickOutcome::default();
    registry.sort_by_key(|c| c.bloat_pages);
    while ctx.mem.free_fraction() < low_watermark {
        let Some(chunk) = registry.pop() else {
            break;
        };
        if chunk.bloat_pages == 0 {
            break; // the registry is sorted; nothing recoverable remains
        }
        demote_chunk(ctx, spaces, &chunk);
        // Demotion cost: PTE surgery plus a shootdown.
        out.daemon_ns += ctx.cost.tlb_shootdown_ns;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::PhysicalMemory;
    use trident_types::PageGeometry;
    use trident_vm::{AddressSpace, VmaKind};

    fn setup(regions: u64) -> (MmContext, SpaceSet) {
        let geo = PageGeometry::TINY;
        let ctx = MmContext::new(PhysicalMemory::new(
            geo,
            regions * geo.base_pages(PageSize::new(2)),
        ));
        let mut spaces = SpaceSet::new();
        spaces.insert(AddressSpace::new(AsId::new(1), geo));
        (ctx, spaces)
    }

    /// Fault a span with base pages (what a pre-promotion state looks
    /// like).
    fn fault_base(ctx: &mut MmContext, spaces: &mut SpaceSet, asid: AsId, start: u64, pages: u64) {
        let space = spaces.get_mut(asid).unwrap();
        if space.vma_containing(Vpn::new(start)).is_none() {
            space
                .mmap_at(Vpn::new(start), pages, VmaKind::Anon)
                .unwrap();
        }
        for i in 0..pages {
            let vpn = Vpn::new(start + i);
            crate::map_chunk(ctx, space, vpn, PageSize::BASE).unwrap();
        }
    }

    #[test]
    fn promote_to_giant_replaces_small_mappings() {
        let (mut ctx, mut spaces) = setup(4);
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 64);
        let out = promote_chunk(
            &mut ctx,
            &mut spaces,
            AsId::new(1),
            Vpn::new(0),
            PageSize::new(2),
            PromotionStyle::Copy,
        )
        .unwrap();
        assert_eq!(out.bloat_pages, 0);
        assert_eq!(out.bytes_copied, 64 * 4096);
        let space = spaces.get(AsId::new(1)).unwrap();
        let t = space.page_table().translate(Vpn::new(10)).unwrap();
        assert_eq!(t.size, PageSize::new(2));
        assert_eq!(ctx.stats.promotions[2], 1);
        ctx.mem.assert_consistent();
    }

    #[test]
    fn promotion_of_partial_chunk_creates_bloat() {
        let (mut ctx, mut spaces) = setup(4);
        spaces
            .get_mut(AsId::new(1))
            .unwrap()
            .mmap_at(Vpn::new(0), 64, VmaKind::Anon)
            .unwrap();
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 10);
        let out = promote_chunk(
            &mut ctx,
            &mut spaces,
            AsId::new(1),
            Vpn::new(0),
            PageSize::new(2),
            PromotionStyle::Copy,
        )
        .unwrap();
        assert_eq!(out.bloat_pages, 54);
        assert_eq!(ctx.stats.bloat_pages, 54);
    }

    #[test]
    fn promote_rejects_non_candidates() {
        let (mut ctx, mut spaces) = setup(4);
        spaces
            .get_mut(AsId::new(1))
            .unwrap()
            .mmap_at(Vpn::new(0), 64, VmaKind::Anon)
            .unwrap();
        // Nothing mapped at all.
        assert_eq!(
            promote_chunk(
                &mut ctx,
                &mut spaces,
                AsId::new(1),
                Vpn::new(0),
                PageSize::new(2),
                PromotionStyle::Copy
            ),
            Err(PromoteError::NotACandidate)
        );
        // Already giant.
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 1);
        promote_chunk(
            &mut ctx,
            &mut spaces,
            AsId::new(1),
            Vpn::new(0),
            PageSize::new(2),
            PromotionStyle::Copy,
        )
        .unwrap();
        assert_eq!(
            promote_chunk(
                &mut ctx,
                &mut spaces,
                AsId::new(1),
                Vpn::new(0),
                PageSize::new(2),
                PromotionStyle::Copy
            ),
            Err(PromoteError::NotACandidate)
        );
    }

    /// After priming plus any amount of dirty-chunk replay, the
    /// incremental candidate index must equal a from-scratch
    /// [`promotion_candidates`] enumeration — the invariant that lets
    /// `scan_space` skip the per-tick full rescan.
    #[test]
    fn candidate_cache_matches_fresh_enumeration() {
        let (mut ctx, mut spaces) = setup(8);
        let asid = AsId::new(1);
        let mut promoter = Promoter::new(PromoterConfig::trident());

        // Prime on the initial layout.
        fault_base(&mut ctx, &mut spaces, asid, 0, 64);
        fault_base(&mut ctx, &mut spaces, asid, 200, 24);
        promoter.refresh_candidates(&mut spaces, asid);

        // Post-priming traffic: new faults, a promotion, and an unmap —
        // every mutation source that feeds the dirty-chunk index.
        fault_base(&mut ctx, &mut spaces, asid, 128, 32);
        promote_chunk(
            &mut ctx,
            &mut spaces,
            asid,
            Vpn::new(0),
            PageSize::new(2),
            PromotionStyle::Copy,
        )
        .unwrap();
        spaces.get_mut(asid).unwrap().munmap(Vpn::new(200), 24);
        promoter.refresh_candidates(&mut spaces, asid);

        let space = spaces.get(asid).unwrap();
        let geo = space.geometry();
        for size in [PageSize::new(2), PageSize::new(1)] {
            let span = geo.base_pages(size);
            let fresh: Vec<u64> = promotion_candidates(space, size)
                .into_iter()
                .map(|(head, _)| head.raw())
                .collect();
            let cache = promoter.cache(asid).expect("primed cache");
            let cached: Vec<u64> = cache.sets[size.rung()]
                .iter()
                .map(|chunk| chunk * span)
                .collect();
            assert_eq!(cached, fresh, "cache diverged at {size:?}");
        }
    }

    #[test]
    fn pv_batched_exchanges_instead_of_copying_huge_portions() {
        let (mut ctx, mut spaces) = setup(8);
        // Map the first giant chunk with 8 huge pages.
        let space = spaces.get_mut(AsId::new(1)).unwrap();
        space.mmap_at(Vpn::new(0), 64, VmaKind::Anon).unwrap();
        for i in 0..8u64 {
            crate::map_chunk(
                &mut ctx,
                spaces.get_mut(AsId::new(1)).unwrap(),
                Vpn::new(i * 8),
                PageSize::new(1),
            )
            .unwrap();
        }
        let copy = promote_chunk(
            &mut ctx,
            &mut spaces,
            AsId::new(1),
            Vpn::new(0),
            PageSize::new(2),
            PromotionStyle::Copy,
        );
        let copy = copy.unwrap();
        assert_eq!(copy.pairs_exchanged, 0);
        assert_eq!(copy.bytes_copied, 64 * 4096);

        // Same layout in a second chunk, promoted with pv.
        spaces
            .get_mut(AsId::new(1))
            .unwrap()
            .mmap_at(Vpn::new(64), 64, VmaKind::Anon)
            .unwrap();
        for i in 0..8u64 {
            crate::map_chunk(
                &mut ctx,
                spaces.get_mut(AsId::new(1)).unwrap(),
                Vpn::new(64 + i * 8),
                PageSize::new(1),
            )
            .unwrap();
        }
        let pv = promote_chunk(
            &mut ctx,
            &mut spaces,
            AsId::new(1),
            Vpn::new(64),
            PageSize::new(2),
            PromotionStyle::PvBatched,
        )
        .unwrap();
        assert_eq!(pv.pairs_exchanged, 8);
        assert_eq!(pv.bytes_copied, 0);
        assert!(
            pv.ns < copy.ns,
            "pv ({}) should beat copy ({})",
            pv.ns,
            copy.ns
        );
    }

    #[test]
    fn promoter_tick_promotes_through_the_flowchart() {
        let (mut ctx, mut spaces) = setup(8);
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 128);
        let mut promoter = Promoter::new(PromoterConfig::trident());
        let (out, promoted) = promoter.tick(&mut ctx, &mut spaces);
        assert!(out.promotions >= 2, "both giant chunks promoted");
        assert_eq!(promoted.len() as u64, out.promotions);
        let space = spaces.get(AsId::new(1)).unwrap();
        assert_eq!(space.page_table().mapped_pages(PageSize::new(2)), 2);
        assert!(out.daemon_ns > 0);
    }

    #[test]
    fn thp_promoter_only_creates_huge_pages() {
        let (mut ctx, mut spaces) = setup(8);
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 64);
        let mut promoter = Promoter::new(PromoterConfig::thp());
        let (_, promoted) = promoter.tick(&mut ctx, &mut spaces);
        assert!(promoted.iter().all(|c| c.size == PageSize::new(1)));
        let space = spaces.get(AsId::new(1)).unwrap();
        assert_eq!(space.page_table().mapped_pages(PageSize::new(2)), 0);
        assert_eq!(space.page_table().mapped_pages(PageSize::new(1)), 8);
    }

    #[test]
    fn demotion_recovers_bloat() {
        let (mut ctx, mut spaces) = setup(4);
        spaces
            .get_mut(AsId::new(1))
            .unwrap()
            .mmap_at(Vpn::new(0), 64, VmaKind::Anon)
            .unwrap();
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 8);
        promote_chunk(
            &mut ctx,
            &mut spaces,
            AsId::new(1),
            Vpn::new(0),
            PageSize::new(2),
            PromotionStyle::Copy,
        )
        .unwrap();
        let used_before = ctx.mem.total_pages() - ctx.mem.free_pages();
        let chunk = PromotedChunk {
            asid: AsId::new(1),
            head: Vpn::new(0),
            size: PageSize::new(2),
            bloat_pages: 56,
        };
        let recovered = demote_chunk(&mut ctx, &mut spaces, &chunk);
        assert_eq!(recovered, 56);
        let used_after = ctx.mem.total_pages() - ctx.mem.free_pages();
        assert_eq!(used_before - used_after, 56);
        let space = spaces.get(AsId::new(1)).unwrap();
        assert!(space.page_table().translate(Vpn::new(7)).is_some());
        assert!(space.page_table().translate(Vpn::new(8)).is_none());
        assert_eq!(ctx.stats.bloat_recovered_pages, 56);
    }

    #[test]
    fn hawkeye_ordering_prefers_hot_chunks() {
        let (mut ctx, mut spaces) = setup(8);
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 128);
        // Touch the *second* giant chunk's pages.
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            for i in 64..128 {
                space.page_table_mut().access(Vpn::new(i), false).unwrap();
            }
        }
        let mut cfg = PromoterConfig::trident();
        cfg.order_by_access = true;
        cfg.chunk_budget = 1; // only one promotion allowed
        let mut promoter = Promoter::new(cfg);
        let (_, promoted) = promoter.tick(&mut ctx, &mut spaces);
        assert_eq!(promoted.len(), 1);
        assert_eq!(promoted[0].head, Vpn::new(64), "hot chunk goes first");
    }

    /// Regression test for the hint API: a pinned range must promote
    /// before an unhinted chunk that the access ordering ranks hotter.
    #[test]
    fn pinned_range_promotes_before_hotter_unhinted_chunk() {
        use crate::{PolicyHint, TenantPolicy};
        use trident_types::TenantId;
        let (mut ctx, mut spaces) = setup(8);
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 128);
        // The *second* giant chunk is the hot one (same layout as the
        // HawkEye ordering test, where it wins)...
        {
            let space = spaces.get_mut(AsId::new(1)).unwrap();
            for i in 64..128 {
                space.page_table_mut().access(Vpn::new(i), false).unwrap();
            }
        }
        // ...but the tenant pins the cold first chunk.
        ctx.tenants.register(
            AsId::new(1),
            TenantPolicy::new(TenantId::new(0)).hint(PolicyHint::new().pin(Vpn::new(0), 64)),
        );
        let mut cfg = PromoterConfig::trident();
        cfg.order_by_access = true;
        cfg.chunk_budget = 1;
        let mut promoter = Promoter::new(cfg);
        let (_, promoted) = promoter.tick(&mut ctx, &mut spaces);
        assert_eq!(promoted.len(), 1);
        assert_eq!(promoted[0].head, Vpn::new(0), "pinning beats hotness");
        // Daemon work done in the scan is attributed to the owning tenant.
        assert_eq!(ctx.tenant_snapshot(TenantId::new(0)).promotions[2], 1);
    }

    #[test]
    fn opted_out_tenant_is_never_promoted() {
        use crate::{PolicyHint, TenantPolicy};
        use trident_types::TenantId;
        let (mut ctx, mut spaces) = setup(8);
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 128);
        ctx.tenants.register(
            AsId::new(1),
            TenantPolicy::new(TenantId::new(0)).hint(PolicyHint::new().opt_out()),
        );
        let mut promoter = Promoter::new(PromoterConfig::trident());
        for _ in 0..4 {
            let (out, promoted) = promoter.tick(&mut ctx, &mut spaces);
            assert_eq!(out.promotions, 0);
            assert!(promoted.is_empty());
        }
        let space = spaces.get(AsId::new(1)).unwrap();
        assert_eq!(space.page_table().mapped_pages(PageSize::new(2)), 0);
        assert_eq!(space.page_table().mapped_pages(PageSize::new(1)), 0);
    }

    #[test]
    fn preferred_size_masks_the_other_pass() {
        use crate::{PolicyHint, TenantPolicy};
        use trident_types::TenantId;
        // Preferring 2MB on a Trident promoter behaves like THP...
        let (mut ctx, mut spaces) = setup(8);
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 64);
        ctx.tenants.register(
            AsId::new(1),
            TenantPolicy::new(TenantId::new(0)).hint(PolicyHint::new().prefer(PageSize::new(1))),
        );
        let mut promoter = Promoter::new(PromoterConfig::trident());
        promoter.tick(&mut ctx, &mut spaces);
        let space = spaces.get(AsId::new(1)).unwrap();
        assert_eq!(space.page_table().mapped_pages(PageSize::new(2)), 0);
        assert_eq!(space.page_table().mapped_pages(PageSize::new(1)), 8);

        // ...and preferring 1GB disables the 2MB pass (and its fallback).
        let (mut ctx, mut spaces) = setup(8);
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 128);
        ctx.tenants.register(
            AsId::new(1),
            TenantPolicy::new(TenantId::new(0)).hint(PolicyHint::new().prefer(PageSize::new(2))),
        );
        let mut promoter = Promoter::new(PromoterConfig::trident());
        promoter.tick(&mut ctx, &mut spaces);
        let space = spaces.get(AsId::new(1)).unwrap();
        assert_eq!(space.page_table().mapped_pages(PageSize::new(2)), 2);
        assert_eq!(space.page_table().mapped_pages(PageSize::new(1)), 0);
    }

    #[test]
    fn weighted_rotation_and_budget_override() {
        use crate::TenantPolicy;
        use trident_types::TenantId;
        let (mut ctx, mut spaces) = setup(16);
        spaces.insert(AddressSpace::new(AsId::new(2), ctx.geometry()));
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 128);
        fault_base(&mut ctx, &mut spaces, AsId::new(2), 0, 128);
        // Tenant 0 (space 1): double weight but a budget of one chunk per
        // visit. Tenant 1 (space 2): single weight, default budget.
        ctx.tenants.register(
            AsId::new(1),
            TenantPolicy::new(TenantId::new(0))
                .weight(2)
                .chunk_budget(1),
        );
        ctx.tenants
            .register(AsId::new(2), TenantPolicy::new(TenantId::new(1)));
        let mut promoter = Promoter::new(PromoterConfig::trident());
        // Schedule is [1, 1, 2]: two visits to space 1, then one to 2.
        let (_, p) = promoter.tick(&mut ctx, &mut spaces);
        assert_eq!((p.len(), p[0].asid), (1, AsId::new(1)), "budget capped");
        let (_, p) = promoter.tick(&mut ctx, &mut spaces);
        assert_eq!((p.len(), p[0].asid), (1, AsId::new(1)));
        let (_, p) = promoter.tick(&mut ctx, &mut spaces);
        assert_eq!(p.len(), 2, "space 2 drains both chunks in one visit");
        assert!(p.iter().all(|c| c.asid == AsId::new(2)));
        // Attribution followed the rotation.
        assert_eq!(ctx.tenant_snapshot(TenantId::new(0)).promotions[2], 2);
        assert_eq!(ctx.tenant_snapshot(TenantId::new(1)).promotions[2], 2);
    }

    /// Regression test for the compaction backoff: on a machine with no
    /// movable contiguity the promoter must stop burning a compaction run
    /// on every tick (doubling sit-out windows, surfaced as
    /// `promotions_deferred`), and the moment contiguity returns — even in
    /// the middle of a sit-out window — promotion must resume.
    #[test]
    fn promotion_backs_off_and_resumes_after_contiguity_returns() {
        use trident_phys::FrameUse;
        let (mut ctx, mut spaces) = setup(2);
        // One 2MB candidate of base pages.
        fault_base(&mut ctx, &mut spaces, AsId::new(1), 0, 8);
        // Pin the rest of memory with unmovable kernel frames so
        // compaction cannot manufacture a free 2MB chunk.
        let mut pins = Vec::new();
        while ctx.mem.has_free(PageSize::BASE) {
            pins.push(
                ctx.mem
                    .allocate(PageSize::BASE, FrameUse::Kernel, None)
                    .unwrap(),
            );
        }
        // The cross-tick window arms only under an active fault plan; a
        // trace-ring rule never fires without a tracer, so this plan is
        // inert apart from enabling the backoff.
        ctx.fault = crate::FaultInjector::new(
            crate::FaultPlan::builder(1)
                .site(trident_obs::InjectSite::TraceRing, 1)
                .build()
                .unwrap(),
        );
        let mut promoter = Promoter::new(PromoterConfig::thp());
        let mut compaction_runs = 0;
        for _ in 0..12 {
            let (out, promoted) = promoter.tick(&mut ctx, &mut spaces);
            assert!(promoted.is_empty(), "nothing can be promoted while pinned");
            compaction_runs += out.compaction_runs;
        }
        // Doubling backoff: retries at ticks 1, 2, 4 and 8 only.
        assert_eq!(compaction_runs, 4, "backoff must suppress hopeless runs");
        assert_eq!(
            ctx.stats.promotions_deferred, 8,
            "sat-out ticks surface as deferrals"
        );
        // Contiguity returns mid-window (skip_ticks > 0 at this point).
        for pfn in pins {
            ctx.mem.free(pfn).unwrap();
        }
        let (out, promoted) = promoter.tick(&mut ctx, &mut spaces);
        assert_eq!(promoted.len(), 1, "promotion resumes immediately");
        assert_eq!(out.promotions, 1);
        assert_eq!(promoted[0].head, Vpn::new(0));
        crate::assert_mm_consistent(&ctx, &spaces);
    }
}
