//! The page-allocation policy interface.

use core::fmt;
use std::error::Error;

use trident_phys::PhysMemError;
use trident_types::Vpn;
use trident_vm::AddressSpace;

use crate::{FaultOutcome, MmContext, SpaceSet};

/// Errors a policy can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyError {
    /// Not even a base page could be allocated.
    OutOfMemory(PhysMemError),
    /// The faulting address lies outside every VMA (a simulated SIGSEGV).
    BadAddress(Vpn),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::OutOfMemory(e) => write!(f, "out of memory: {e}"),
            PolicyError::BadAddress(vpn) => write!(f, "fault at unmapped address {vpn}"),
        }
    }
}

impl Error for PolicyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PolicyError::OutOfMemory(e) => Some(e),
            PolicyError::BadAddress(_) => None,
        }
    }
}

/// What one background-daemon tick accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// CPU time consumed by daemon work this tick (scan + copy + zeroing).
    pub daemon_ns: u64,
    /// Mappings promoted to a larger size.
    pub promotions: u64,
    /// Compaction runs performed.
    pub compaction_runs: u64,
}

impl TickOutcome {
    /// Accumulates another outcome into this one.
    pub fn absorb(&mut self, other: TickOutcome) {
        self.daemon_ns += other.daemon_ns;
        self.promotions += other.promotions;
        self.compaction_runs += other.compaction_runs;
    }
}

/// A page-size allocation policy: the OS component the paper varies.
///
/// The simulator calls [`PagePolicy::on_fault`] whenever a workload touches
/// an unmapped page, and [`PagePolicy::on_tick`] periodically to model the
/// background daemons (`khugepaged`, Trident's zero-fill thread,
/// HawkEye's `kbinmanager`).
pub trait PagePolicy {
    /// A short name for reports ("THP", "Trident", ...).
    fn name(&self) -> String;

    /// Handles a page fault at `vpn`: maps some page covering it and
    /// reports the size used and the fault latency.
    ///
    /// # Errors
    ///
    /// [`PolicyError::BadAddress`] if `vpn` is outside every VMA;
    /// [`PolicyError::OutOfMemory`] if no frame at all could be allocated.
    fn on_fault(
        &mut self,
        ctx: &mut MmContext,
        space: &mut AddressSpace,
        vpn: Vpn,
    ) -> Result<FaultOutcome, PolicyError>;

    /// Runs one background-daemon tick over all address spaces.
    fn on_tick(&mut self, _ctx: &mut MmContext, _spaces: &mut SpaceSet) -> TickOutcome {
        TickOutcome::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_phys::AllocError;

    #[test]
    fn errors_display_and_chain() {
        let e =
            PolicyError::OutOfMemory(PhysMemError::OutOfContiguousMemory(AllocError { order: 0 }));
        assert!(e.to_string().starts_with("out of memory"));
        assert!(e.source().is_some());
        let b = PolicyError::BadAddress(Vpn::new(66));
        assert!(b.to_string().contains("0x42"));
        assert!(b.source().is_none());
    }

    #[test]
    fn tick_outcomes_absorb() {
        let mut a = TickOutcome {
            daemon_ns: 10,
            promotions: 1,
            compaction_runs: 0,
        };
        a.absorb(TickOutcome {
            daemon_ns: 5,
            promotions: 2,
            compaction_runs: 3,
        });
        assert_eq!(
            a,
            TickOutcome {
                daemon_ns: 15,
                promotions: 3,
                compaction_runs: 3
            }
        );
    }
}
