//! The page-allocation policy interface.

use trident_types::{TridentError, Vpn};
use trident_vm::AddressSpace;

use crate::{FaultOutcome, MmContext, SpaceSet};

/// Errors a policy can raise.
///
/// Alias of the unified [`TridentError`]: allocation failures
/// (`OutOfContiguousMemory`) propagate from the physical layer with `?`
/// instead of being re-wrapped, and a fault outside every VMA (a simulated
/// SIGSEGV) is `BadAddress`.
pub type PolicyError = TridentError;

/// What one background-daemon tick accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOutcome {
    /// CPU time consumed by daemon work this tick (scan + copy + zeroing).
    pub daemon_ns: u64,
    /// Mappings promoted to a larger size.
    pub promotions: u64,
    /// Compaction runs performed.
    pub compaction_runs: u64,
}

impl TickOutcome {
    /// Accumulates another outcome into this one.
    pub fn absorb(&mut self, other: TickOutcome) {
        self.daemon_ns += other.daemon_ns;
        self.promotions += other.promotions;
        self.compaction_runs += other.compaction_runs;
    }
}

/// A page-size allocation policy: the OS component the paper varies.
///
/// The simulator calls [`PagePolicy::on_fault`] whenever a workload touches
/// an unmapped page, and [`PagePolicy::on_tick`] periodically to model the
/// background daemons (`khugepaged`, Trident's zero-fill thread,
/// HawkEye's `kbinmanager`).
pub trait PagePolicy {
    /// A short name for reports ("THP", "Trident", ...).
    fn name(&self) -> String;

    /// Handles a page fault at `vpn`: maps some page covering it and
    /// reports the size used and the fault latency.
    ///
    /// # Errors
    ///
    /// [`PolicyError::BadAddress`] if `vpn` is outside every VMA;
    /// [`PolicyError::OutOfContiguousMemory`] if no frame at all could be
    /// allocated.
    fn on_fault(
        &mut self,
        ctx: &mut MmContext,
        space: &mut AddressSpace,
        vpn: Vpn,
    ) -> Result<FaultOutcome, PolicyError>;

    /// Runs one background-daemon tick over all address spaces.
    fn on_tick(&mut self, _ctx: &mut MmContext, _spaces: &mut SpaceSet) -> TickOutcome {
        TickOutcome::default()
    }
}

#[cfg(test)]
mod tests {
    use std::error::Error;

    use trident_phys::AllocError;

    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = PolicyError::OutOfContiguousMemory(AllocError { order: 0 });
        assert!(e.to_string().contains("no contiguous free chunk"));
        assert!(e.source().is_some());
        let b = PolicyError::BadAddress(Vpn::new(66));
        assert!(b.to_string().contains("0x42"));
        assert!(b.source().is_none());
    }

    #[test]
    fn tick_outcomes_absorb() {
        let mut a = TickOutcome {
            daemon_ns: 10,
            promotions: 1,
            compaction_runs: 0,
        };
        a.absorb(TickOutcome {
            daemon_ns: 5,
            promotions: 2,
            compaction_runs: 3,
        });
        assert_eq!(
            a,
            TickOutcome {
                daemon_ns: 15,
                promotions: 3,
                compaction_runs: 3
            }
        );
    }
}
