//! Every core error/degradation path must be reachable from a fault plan
//! alone — no hand-crafted memory exhaustion required.

use trident_core::{
    check_mm_consistent, map_chunk, CompactionKind, Compactor, Event, FaultInjector, FaultPlan,
    InjectSite, MmContext, Promoter, PromoterConfig, SpaceSet,
};
use trident_phys::PhysicalMemory;
use trident_types::{AsId, PageGeometry, PageSize, TridentError, Vpn};
use trident_vm::{AddressSpace, VmaKind};

fn always(site: InjectSite) -> FaultInjector {
    FaultInjector::new(
        FaultPlan::builder(99)
            .site(site, 1000)
            .build()
            .expect("valid probability"),
    )
}

fn setup() -> (MmContext, SpaceSet) {
    let geo = PageGeometry::TINY;
    let ctx = MmContext::new(PhysicalMemory::new(
        geo,
        4 * geo.base_pages(PageSize::new(2)),
    ));
    let mut spaces = SpaceSet::new();
    let mut space = AddressSpace::new(AsId::new(1), geo);
    space.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
    spaces.insert(space);
    (ctx, spaces)
}

#[test]
fn alloc_injection_surfaces_as_out_of_contiguous_memory() {
    let (mut ctx, mut spaces) = setup();
    ctx.fault = always(InjectSite::Alloc);
    for size in [PageSize::new(1), PageSize::new(2)] {
        let space = spaces.get_mut(AsId::new(1)).unwrap();
        let err = map_chunk(&mut ctx, space, Vpn::new(0), size).unwrap_err();
        let TridentError::OutOfContiguousMemory(alloc) = err else {
            panic!("expected OutOfContiguousMemory, got {err}");
        };
        assert_eq!(alloc.order, ctx.geometry().order(size));
        // The error chains to the allocation failure (satellite: source()).
        assert!(std::error::Error::source(&err).is_some());
    }
    // Base pages are the last-resort path and are never injected.
    let space = spaces.get_mut(AsId::new(1)).unwrap();
    assert!(map_chunk(&mut ctx, space, Vpn::new(0), PageSize::BASE).is_ok());
    assert_eq!(ctx.fault.injected(InjectSite::Alloc), 2);
    assert_eq!(ctx.stats.injected_faults[InjectSite::Alloc as usize], 2);
}

#[test]
fn compaction_injection_aborts_the_run_and_is_traced() {
    let geo = PageGeometry::TINY;
    // A single giant block: one base mapping breaks it, so `has_free`
    // cannot short-circuit and the compactor actually runs.
    let mut ctx = MmContext::new(PhysicalMemory::new(geo, geo.base_pages(PageSize::new(2))));
    let mut spaces = SpaceSet::new();
    let mut space = AddressSpace::new(AsId::new(1), geo);
    space.mmap_at(Vpn::new(0), 128, VmaKind::Anon).unwrap();
    spaces.insert(space);
    let space = spaces.get_mut(AsId::new(1)).unwrap();
    map_chunk(&mut ctx, space, Vpn::new(0), PageSize::BASE).unwrap();
    ctx.fault = always(InjectSite::Compaction);
    let mut compactor = Compactor::new(CompactionKind::Smart);
    let out = compactor.compact(&mut ctx, &mut spaces, PageSize::new(2));
    assert!(!out.success, "injected abort must fail the run");
    let snap = ctx.stats.snapshot();
    assert_eq!(snap.injected_at(InjectSite::Compaction), 1);
    assert_eq!(snap.compaction_attempts, 1);
    assert_eq!(snap.compaction_successes, 0);
    assert_eq!(snap.compaction_bytes_copied, 0, "aborted before any move");
    assert!(check_mm_consistent(&ctx, &spaces).is_ok());
}

#[test]
fn promotion_injection_defers_instead_of_promoting() {
    let (mut ctx, mut spaces) = setup();
    let space = spaces.get_mut(AsId::new(1)).unwrap();
    for i in 0..64 {
        map_chunk(&mut ctx, space, Vpn::new(i), PageSize::BASE).unwrap();
    }
    ctx.fault = always(InjectSite::Promotion);
    let mut promoter = Promoter::new(PromoterConfig::trident());
    let (out, promoted) = promoter.tick(&mut ctx, &mut spaces);
    assert_eq!(out.promotions, 0);
    assert!(promoted.is_empty());
    let snap = ctx.stats.snapshot();
    assert!(snap.promotions_deferred > 0);
    assert!(snap.injected_at(InjectSite::Promotion) > 0);
    assert!(check_mm_consistent(&ctx, &spaces).is_ok());
    // Disarming the plan lets the exact same promoter promote again.
    ctx.fault = FaultInjector::disabled();
    let (out, promoted) = promoter.tick(&mut ctx, &mut spaces);
    assert!(out.promotions > 0, "promotion resumes once faults stop");
    assert!(!promoted.is_empty());
}

#[test]
fn trace_ring_injection_drops_the_event_but_keeps_stats() {
    let (mut ctx, _) = setup();
    ctx.recorder = trident_core::ObsRecorder::ring(1024);
    ctx.fault = always(InjectSite::TraceRing);
    ctx.record(Event::ZeroFill { blocks: 3 });
    // Stats saw the real event; the trace holds only the injection marker
    // and the ring accounts one dropped event.
    assert_eq!(ctx.stats.giant_blocks_prezeroed, 3);
    assert_eq!(ctx.stats.injected_faults[InjectSite::TraceRing as usize], 1);
    let tracer = ctx.recorder.tracer_mut().unwrap();
    assert_eq!(tracer.dropped(), 1);
    let events = tracer.drain();
    assert_eq!(
        events,
        vec![Event::FaultInjected {
            site: InjectSite::TraceRing
        }]
    );
}
