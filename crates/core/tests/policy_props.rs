//! Property-based tests over whole policies: arbitrary interleavings of
//! VMA growth, page faults and daemon ticks must keep the physical memory,
//! page tables and reverse maps mutually consistent.

use proptest::prelude::*;
use trident_core::{
    assert_mm_consistent, BasePolicy, HawkEyePolicy, MmContext, PagePolicy, SpaceSet, ThpPolicy,
    TridentConfig, TridentPolicy,
};
use trident_phys::PhysicalMemory;
use trident_types::{AsId, PageGeometry, PageSize, Vpn};
use trident_vm::{AddressSpace, VmaKind};

#[derive(Debug, Clone)]
enum Op {
    /// Grow the address space by `pages` (sometimes with a gap).
    Grow { pages: u64, gap: u64 },
    /// Fault at a pseudo-random allocated page.
    Touch { salt: u64 },
    /// Run one daemon tick.
    Tick,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..96, prop_oneof![Just(0u64), 1u64..8])
                .prop_map(|(pages, gap)| Op::Grow { pages, gap }),
            (any::<u64>()).prop_map(|salt| Op::Touch { salt }),
            Just(Op::Tick),
        ],
        1..80,
    )
}

fn policies() -> Vec<Box<dyn PagePolicy>> {
    vec![
        Box::new(BasePolicy::new()),
        Box::new(ThpPolicy::new()),
        Box::new(HawkEyePolicy::new()),
        Box::new(TridentPolicy::new(TridentConfig::full())),
        Box::new(TridentPolicy::new(TridentConfig::giant_only())),
        Box::new(TridentPolicy::new(TridentConfig::normal_compaction())),
    ]
}

fn run_ops(policy: &mut dyn PagePolicy, ops: &[Op]) {
    let geo = PageGeometry::TINY;
    let mut ctx = MmContext::new(PhysicalMemory::new(
        geo,
        16 * geo.base_pages(PageSize::new(2)),
    ));
    let asid = AsId::new(1);
    let mut spaces = SpaceSet::new();
    spaces.insert(AddressSpace::new(asid, geo));
    let mut allocated = 0u64;
    for op in ops {
        match op {
            Op::Grow { pages, gap } => {
                let space = spaces.get_mut(asid).expect("space");
                if space.total_vma_pages() + pages < 12 * 64 {
                    space
                        .mmap(*pages, VmaKind::Anon, PageSize::BASE, *gap)
                        .expect("grow");
                    allocated += pages;
                }
            }
            Op::Touch { salt } => {
                if allocated == 0 {
                    continue;
                }
                // Pick the salt-th allocated page (by VMA order).
                let space = spaces.get_mut(asid).expect("space");
                let mut index = salt % allocated;
                let mut target = None;
                for vma in space.vmas() {
                    if index < vma.pages {
                        target = Some(vma.start + index);
                        break;
                    }
                    index -= vma.pages;
                }
                let vpn: Vpn = target.expect("index within allocation");
                if space.page_table().translate(vpn).is_none() {
                    policy.on_fault(&mut ctx, space, vpn).expect("fault");
                }
            }
            Op::Tick => {
                policy.on_tick(&mut ctx, &mut spaces);
            }
        }
        assert_mm_consistent(&ctx, &spaces);
    }
    // Final deep check: every allocated-and-touched page still translates.
    assert_mm_consistent(&ctx, &spaces);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every policy keeps the three layers consistent under arbitrary
    /// grow/touch/tick interleavings.
    #[test]
    fn policies_preserve_cross_layer_consistency(ops in ops()) {
        for mut policy in policies() {
            run_ops(policy.as_mut(), &ops);
        }
    }

    /// Mapped content is never lost: once a page translates, it keeps
    /// translating across ticks (promotion replaces, never drops).
    #[test]
    fn ticks_never_unmap_touched_pages(
        grows in prop::collection::vec((1u64..64, 0u64..4), 1..10),
        ticks in 1usize..12,
    ) {
        let geo = PageGeometry::TINY;
        let mut ctx =
            MmContext::new(PhysicalMemory::new(geo, 16 * geo.base_pages(PageSize::new(2))));
        let asid = AsId::new(1);
        let mut spaces = SpaceSet::new();
        spaces.insert(AddressSpace::new(asid, geo));
        let mut policy = TridentPolicy::new(TridentConfig::full());
        let mut touched = Vec::new();
        for (pages, gap) in grows {
            let space = spaces.get_mut(asid).expect("space");
            let start = space.mmap(pages, VmaKind::Anon, PageSize::BASE, gap).expect("grow");
            for i in 0..pages {
                let vpn = start + i;
                let space = spaces.get_mut(asid).expect("space");
                if space.page_table().translate(vpn).is_none() {
                    policy.on_fault(&mut ctx, space, vpn).expect("fault");
                }
                touched.push(vpn);
            }
        }
        for _ in 0..ticks {
            policy.on_tick(&mut ctx, &mut spaces);
            let space = spaces.get(asid).expect("space");
            for vpn in &touched {
                prop_assert!(
                    space.page_table().translate(*vpn).is_some(),
                    "page {vpn} lost its mapping"
                );
            }
        }
        assert_mm_consistent(&ctx, &spaces);
    }
}
