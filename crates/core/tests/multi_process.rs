//! Multi-process behaviour: Figure 5's flowchart starts with "select
//! candidate process P" — khugepaged round-robins across processes, and
//! compaction must fix up *any* process's page tables through the reverse
//! map.

use trident_core::{
    assert_mm_consistent, map_chunk, CompactionKind, Compactor, MmContext, PagePolicy, SpaceSet,
    TridentConfig, TridentPolicy,
};
use trident_phys::PhysicalMemory;
use trident_types::{AsId, PageGeometry, PageSize, Vpn};
use trident_vm::{AddressSpace, VmaKind};

fn setup(processes: u32) -> (MmContext, SpaceSet) {
    let geo = PageGeometry::TINY;
    let ctx = MmContext::new(PhysicalMemory::new(
        geo,
        32 * geo.base_pages(PageSize::new(2)),
    ));
    let mut spaces = SpaceSet::new();
    for p in 1..=processes {
        spaces.insert(AddressSpace::new(AsId::new(p), geo));
    }
    (ctx, spaces)
}

/// Fault 4KB pages over a fresh giant-aligned VMA in one process.
fn populate_base(ctx: &mut MmContext, spaces: &mut SpaceSet, asid: AsId, giants: u64) {
    let geo = ctx.geometry();
    let pages = giants * geo.base_pages(PageSize::new(2));
    let space = spaces.get_mut(asid).expect("space");
    let start = space
        .mmap(pages, VmaKind::Anon, PageSize::new(2), 0)
        .expect("mmap");
    for i in 0..pages {
        let space = spaces.get_mut(asid).expect("space");
        map_chunk(ctx, space, start + i, PageSize::BASE).expect("fault");
    }
}

#[test]
fn khugepaged_round_robins_across_processes() {
    let (mut ctx, mut spaces) = setup(3);
    for p in 1..=3 {
        populate_base(&mut ctx, &mut spaces, AsId::new(p), 2);
    }
    let mut policy = TridentPolicy::new(TridentConfig::full());
    // Three ticks: one candidate process each; all should end up promoted.
    for _ in 0..3 {
        policy.on_tick(&mut ctx, &mut spaces);
    }
    for p in 1..=3 {
        let space = spaces.get(AsId::new(p)).expect("space");
        assert!(
            space.page_table().mapped_pages(PageSize::new(2)) >= 2,
            "process {p} was skipped by the round-robin"
        );
    }
    assert_mm_consistent(&ctx, &spaces);
}

#[test]
fn compaction_fixes_page_tables_of_every_owner() {
    let (mut ctx, mut spaces) = setup(4);
    let geo = ctx.geometry();
    // Interleave single-page allocations from four processes so every
    // region holds frames owned by several address spaces.
    let gp = geo.base_pages(PageSize::new(2));
    for i in 0..(32 * gp) {
        let asid = AsId::new((i % 4 + 1) as u32);
        let space = spaces.get_mut(asid).expect("space");
        let vpn = if space.vma_containing(Vpn::new(i)).is_none() {
            space.mmap_at(Vpn::new(i), 1, VmaKind::Anon).ok();
            Vpn::new(i)
        } else {
            Vpn::new(i)
        };
        map_chunk(&mut ctx, space, vpn, PageSize::BASE).expect("fault");
    }
    // Free three of every four pages to fragment, keeping process 1's.
    for p in 2..=4 {
        let heads: Vec<_> = {
            let space = spaces.get(AsId::new(p)).expect("space");
            let vmas: Vec<_> = space.vmas().copied().collect();
            vmas.iter()
                .flat_map(|v| space.page_table().mappings_in(v.start, v.pages))
                .collect()
        };
        let space = spaces.get_mut(AsId::new(p)).expect("space");
        for leaf in heads {
            space.page_table_mut().unmap(leaf.vpn).expect("unmap");
            ctx.mem.free(leaf.pfn).expect("free");
        }
    }
    assert!(!ctx.mem.has_free(PageSize::new(2)));
    let out =
        Compactor::new(CompactionKind::Smart).compact(&mut ctx, &mut spaces, PageSize::new(2));
    assert!(out.success);
    assert!(out.migrated_units > 0);
    // Process 1's mappings all survived migration and still resolve.
    assert_mm_consistent(&ctx, &spaces);
}
