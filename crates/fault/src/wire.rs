//! Deterministic fault injection for the line-JSON transport.
//!
//! The memory-management sites ([`InjectSite`](crate::InjectSite)) cover
//! the simulator; this module covers the *wire* between `tridentctl`
//! and `tridentd`. A [`WirePlan`] is the network twin of a
//! [`FaultPlan`](crate::FaultPlan): a seed plus one [`SiteRule`] per
//! [`WireSite`], executed by a [`WireInjector`] whose every decision is
//! a pure function of `(seed, site, per-site decision index)` via the
//! same SplitMix64 finalizer. A chaos run under a wire plan is
//! therefore exactly reproducible — which is what lets CI assert that a
//! grid driven through drops, truncations and severed connections still
//! produces byte-identical results.
//!
//! The sites are deliberately separate from `InjectSite`: extending the
//! MM enum would grow `StatsSnapshot.injected_faults` and bump the
//! snapshot schema for something that never touches the simulation.
//! Wire faults live entirely in the client transport.
//!
//! # Examples
//!
//! ```
//! use trident_fault::{WireInjector, WirePlan, WireSite};
//!
//! let plan = WirePlan::builder(7)
//!     .site(WireSite::Drop, 100)     // 10% of request lines vanish
//!     .site(WireSite::Sever, 20)     // 2% of round-trips cut the socket
//!     .build()
//!     .unwrap();
//! let mut injector = WireInjector::new(plan);
//! let a: Vec<bool> = (0..8).map(|_| injector.should_inject(WireSite::Drop)).collect();
//! let mut again = WireInjector::new(plan);
//! let b: Vec<bool> = (0..8).map(|_| again.should_inject(WireSite::Drop)).collect();
//! assert_eq!(a, b);
//! ```

use crate::{splitmix64, SiteRule, PROB_SCALE};

/// Number of wire injection sites (the length of [`WireSite::ALL`]).
pub const WIRE_SITE_COUNT: usize = WireSite::ALL.len();

/// SplitMix64 finalization, exposed for callers that need a seeded,
/// schedule-independent word outside an injector — retry backoff jitter
/// derives from this so a retry schedule replays exactly under a fixed
/// policy seed.
#[must_use]
pub fn mix64(z: u64) -> u64 {
    splitmix64(z)
}

/// Where a network fault can bite one protocol round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireSite {
    /// The request line is never written; the caller's read deadline
    /// expires instead of an answer arriving.
    Drop,
    /// The response line arrives, but late (a bounded, seed-derived
    /// delay). Never changes bytes — only wall-clock latency.
    Delay,
    /// The response line is cut short mid-message; the decoder must
    /// answer with a typed malformed error, never a panic.
    Truncate,
    /// The response line's framing byte is overwritten; like
    /// [`Truncate`](WireSite::Truncate), decodes to a typed error.
    Corrupt,
    /// The connection is shut down before the request goes out; the
    /// caller sees a closed connection and must reconnect.
    Sever,
}

impl WireSite {
    /// All sites, for table-driven parsing, plans and tests.
    pub const ALL: [WireSite; 5] = [
        WireSite::Drop,
        WireSite::Delay,
        WireSite::Truncate,
        WireSite::Corrupt,
        WireSite::Sever,
    ];

    /// Stable lowercase tag, used by `--net-fault SITE:PROB` flags.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WireSite::Drop => "drop",
            WireSite::Delay => "delay",
            WireSite::Truncate => "truncate",
            WireSite::Corrupt => "corrupt",
            WireSite::Sever => "sever",
        }
    }

    /// Parses a tag produced by [`as_str`](Self::as_str).
    #[must_use]
    pub fn parse(s: &str) -> Option<WireSite> {
        WireSite::ALL.into_iter().find(|site| site.as_str() == s)
    }
}

impl std::fmt::Display for WireSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A seeded, deterministic network fault plan: one [`SiteRule`] per
/// [`WireSite`]. `Copy`, like [`FaultPlan`](crate::FaultPlan) — all
/// run-time state lives in the [`WireInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WirePlan {
    seed: u64,
    rules: [SiteRule; WIRE_SITE_COUNT],
}

impl WirePlan {
    /// The plan that injects nothing.
    #[must_use]
    pub fn disabled() -> WirePlan {
        WirePlan {
            seed: 0,
            rules: [SiteRule::default(); WIRE_SITE_COUNT],
        }
    }

    /// A builder starting from [`WirePlan::disabled`] with `seed`.
    #[must_use]
    pub fn builder(seed: u64) -> WirePlanBuilder {
        WirePlanBuilder {
            plan: WirePlan {
                seed,
                rules: [SiteRule::default(); WIRE_SITE_COUNT],
            },
            error: None,
        }
    }

    /// A plan firing at every site with the same per-mille probability
    /// (clamped to [`PROB_SCALE`]).
    #[must_use]
    pub fn uniform(seed: u64, prob_milli: u16) -> WirePlan {
        let rule = SiteRule::with_probability(prob_milli.min(PROB_SCALE));
        WirePlan {
            seed,
            rules: [rule; WIRE_SITE_COUNT],
        }
    }

    /// The same rules under a different decision seed — used to give
    /// each fleet endpoint its own decorrelated fault stream.
    #[must_use]
    pub fn reseeded(mut self, seed: u64) -> WirePlan {
        self.seed = seed;
        self
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rule for `site`.
    #[must_use]
    pub fn rule(&self, site: WireSite) -> SiteRule {
        self.rules[site as usize]
    }

    /// Whether any site can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rules.iter().any(SiteRule::is_active)
    }
}

/// Builder for [`WirePlan`] with validation at
/// [`build`](WirePlanBuilder::build).
#[derive(Debug, Clone)]
pub struct WirePlanBuilder {
    plan: WirePlan,
    error: Option<WirePlanError>,
}

impl WirePlanBuilder {
    /// Sets `site` to fire unbounded with probability `prob_milli`/1000.
    #[must_use]
    pub fn site(mut self, site: WireSite, prob_milli: u16) -> WirePlanBuilder {
        if prob_milli > PROB_SCALE {
            self.error = Some(WirePlanError::ProbabilityOutOfRange { site, prob_milli });
        } else {
            self.plan.rules[site as usize] = SiteRule::with_probability(prob_milli);
        }
        self
    }

    /// Sets `site` to fire with probability `prob_milli`/1000 at most
    /// `max_faults` times.
    #[must_use]
    pub fn site_capped(
        mut self,
        site: WireSite,
        prob_milli: u16,
        max_faults: u32,
    ) -> WirePlanBuilder {
        if prob_milli > PROB_SCALE {
            self.error = Some(WirePlanError::ProbabilityOutOfRange { site, prob_milli });
        } else {
            self.plan.rules[site as usize] = SiteRule {
                prob_milli,
                max_faults,
            };
        }
        self
    }

    /// Finalizes the plan.
    ///
    /// # Errors
    ///
    /// [`WirePlanError`] if any rule was out of range.
    pub fn build(self) -> Result<WirePlan, WirePlanError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.plan),
        }
    }
}

/// An invalid [`WirePlan`] rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WirePlanError {
    /// A probability exceeded [`PROB_SCALE`].
    ProbabilityOutOfRange {
        /// The offending site.
        site: WireSite,
        /// The rejected value.
        prob_milli: u16,
    },
}

impl std::fmt::Display for WirePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WirePlanError::ProbabilityOutOfRange { site, prob_milli } => write!(
                f,
                "wire fault probability {prob_milli}/{PROB_SCALE} at site {site} exceeds the scale"
            ),
        }
    }
}

impl std::error::Error for WirePlanError {}

/// Per-site decision bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct SiteState {
    decisions: u64,
    injected: u64,
}

/// Executes a [`WirePlan`]: one injector per client connection stream.
///
/// Each [`should_inject`](WireInjector::should_inject) call advances the
/// site's decision counter and hashes `(seed, site, index)` — the same
/// construction as [`FaultInjector`](crate::FaultInjector), with a
/// distinct stream tag so wire decisions never correlate with MM
/// decisions under a shared seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireInjector {
    plan: WirePlan,
    sites: [SiteState; WIRE_SITE_COUNT],
}

impl Default for WireInjector {
    fn default() -> Self {
        WireInjector::disabled()
    }
}

impl WireInjector {
    /// An injector that never fires.
    #[must_use]
    pub fn disabled() -> WireInjector {
        WireInjector::new(WirePlan::disabled())
    }

    /// An injector executing `plan` from decision zero.
    #[must_use]
    pub fn new(plan: WirePlan) -> WireInjector {
        WireInjector {
            plan,
            sites: [SiteState::default(); WIRE_SITE_COUNT],
        }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> WirePlan {
        self.plan
    }

    /// Whether any site can still fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.plan.is_active()
    }

    /// Decides whether to inject a fault at `site`, advancing the
    /// site's decision counter. A pure function of `(plan seed, site,
    /// decision index)`.
    pub fn should_inject(&mut self, site: WireSite) -> bool {
        let rule = self.plan.rules[site as usize];
        if !rule.is_active() {
            return false;
        }
        let state = &mut self.sites[site as usize];
        if state.injected >= u64::from(rule.max_faults) {
            return false;
        }
        let index = state.decisions;
        state.decisions += 1;
        let word = splitmix64(
            self.plan.seed
                ^ 0x57A6_E000 // wire stream tag, decorrelating from InjectSite streams
                ^ (site as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let fire = (word % u64::from(PROB_SCALE)) < u64::from(rule.prob_milli);
        if fire {
            state.injected += 1;
        }
        fire
    }

    /// A seed-derived word for `site`'s current decision index, for
    /// faults that need a magnitude (e.g. delay length) in addition to
    /// the fire/no-fire bit. Does not advance the decision counter.
    #[must_use]
    pub fn magnitude(&self, site: WireSite) -> u64 {
        splitmix64(
            self.plan.seed
                ^ 0x57A6_E001 // distinct from the decision stream tag
                ^ (site as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ self.sites[site as usize]
                    .decisions
                    .wrapping_mul(0xD1B5_4A32_D192_ED03),
        )
    }

    /// Decisions made so far at `site`.
    #[must_use]
    pub fn decisions(&self, site: WireSite) -> u64 {
        self.sites[site as usize].decisions
    }

    /// Faults injected so far at `site`.
    #[must_use]
    pub fn injected(&self, site: WireSite) -> u64 {
        self.sites[site as usize].injected
    }

    /// Faults injected so far across all sites.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.sites.iter().map(|s| s.injected).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_tags_round_trip() {
        for site in WireSite::ALL {
            assert_eq!(WireSite::parse(site.as_str()), Some(site));
        }
        assert_eq!(WireSite::parse("nope"), None);
    }

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = WireInjector::disabled();
        assert!(!inj.enabled());
        for site in WireSite::ALL {
            for _ in 0..50 {
                assert!(!inj.should_inject(site));
            }
            assert_eq!(inj.decisions(site), 0, "inactive sites skip the hash");
        }
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn decision_stream_is_pure_per_site() {
        let plan = WirePlan::uniform(11, 400);
        let mut a = WireInjector::new(plan);
        let mut b = WireInjector::new(plan);
        let a_drop: Vec<bool> = (0..64).map(|_| a.should_inject(WireSite::Drop)).collect();
        let a_sever: Vec<bool> = (0..64).map(|_| a.should_inject(WireSite::Sever)).collect();
        let mut b_drop = Vec::new();
        let mut b_sever = Vec::new();
        for _ in 0..64 {
            b_sever.push(b.should_inject(WireSite::Sever));
            b_drop.push(b.should_inject(WireSite::Drop));
        }
        assert_eq!(a_drop, b_drop);
        assert_eq!(a_sever, b_sever);
    }

    #[test]
    fn wire_streams_decorrelate_from_mm_streams() {
        // Same seed, same index: the wire Drop stream must not mirror the
        // MM Alloc stream, or a shared chaos seed would couple transport
        // faults to allocation faults.
        let mut wire = WireInjector::new(WirePlan::uniform(42, 500));
        let mut mm = crate::FaultInjector::new(crate::FaultPlan::uniform(42, 500));
        let w: Vec<bool> = (0..256)
            .map(|_| wire.should_inject(WireSite::Drop))
            .collect();
        let m: Vec<bool> = (0..256)
            .map(|_| mm.should_inject(crate::InjectSite::Alloc))
            .collect();
        assert_ne!(w, m);
    }

    #[test]
    fn cap_limits_injections() {
        let plan = WirePlan::builder(3)
            .site_capped(WireSite::Sever, 1000, 2)
            .build()
            .unwrap();
        let mut inj = WireInjector::new(plan);
        let fired = (0..50)
            .filter(|_| inj.should_inject(WireSite::Sever))
            .count();
        assert_eq!(fired, 2);
    }

    #[test]
    fn builder_rejects_out_of_range_probability() {
        let err = WirePlan::builder(0)
            .site(WireSite::Corrupt, 1001)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("corrupt"));
    }

    #[test]
    fn reseeded_changes_the_stream_not_the_rules() {
        let plan = WirePlan::uniform(1, 500);
        let other = plan.reseeded(2);
        assert_eq!(plan.rule(WireSite::Drop), other.rule(WireSite::Drop));
        let sa: Vec<bool> = {
            let mut inj = WireInjector::new(plan);
            (0..256)
                .map(|_| inj.should_inject(WireSite::Drop))
                .collect()
        };
        let sb: Vec<bool> = {
            let mut inj = WireInjector::new(other);
            (0..256)
                .map(|_| inj.should_inject(WireSite::Drop))
                .collect()
        };
        assert_ne!(sa, sb);
    }

    #[test]
    fn magnitude_is_deterministic_and_decorrelated_from_decisions() {
        let plan = WirePlan::uniform(9, 1000);
        let a = WireInjector::new(plan);
        let b = WireInjector::new(plan);
        assert_eq!(a.magnitude(WireSite::Delay), b.magnitude(WireSite::Delay));
        let mut c = WireInjector::new(plan);
        let before = c.magnitude(WireSite::Delay);
        let _ = c.should_inject(WireSite::Delay);
        assert_ne!(before, c.magnitude(WireSite::Delay), "index advances it");
    }
}
