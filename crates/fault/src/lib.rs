//! Deterministic fault injection for the Trident simulator.
//!
//! The paper's central safety claim (§4, §6) is that every large-page path
//! degrades gracefully: fault-time allocation falls back 1GB→2MB→4KB,
//! promotion defers when compaction cannot mint contiguity, and Trident_pv
//! falls back to copying when the exchange hypercall fails. This crate
//! makes those failures a first-class, *deterministic* input to the
//! simulator instead of something that only happens when memory happens to
//! fragment.
//!
//! A [`FaultPlan`] is a seed plus one probability rule per
//! [`InjectSite`]; a [`FaultInjector`] executes the plan. Each decision is
//! a pure function of `(seed, site, per-site decision index)` — SplitMix64
//! finalization, the same construction the experiment runner uses to
//! derive cell seeds — so a run under a plan is bit-identical across
//! thread counts and repeat invocations (DESIGN.md's determinism
//! contract). Wall-clock time, thread identity and scheduling never enter
//! the decision.
//!
//! The injector itself only *decides*; the layers that consult it
//! (`trident-core`'s fault handler, promoter and compactor, `trident-virt`'s
//! hypercall path) turn a `true` into the corresponding failure and report
//! it as an [`Event::FaultInjected`](trident_obs::Event::FaultInjected).
//!
//! # Examples
//!
//! ```
//! use trident_fault::{FaultInjector, FaultPlan, InjectSite};
//!
//! let plan = FaultPlan::builder(42)
//!     .site(InjectSite::Alloc, 250)      // 25% of large allocations fail
//!     .site(InjectSite::Compaction, 100) // 10% of compaction passes abort
//!     .build()
//!     .unwrap();
//! let mut injector = FaultInjector::new(plan);
//! let decisions: Vec<bool> = (0..8).map(|_| injector.should_inject(InjectSite::Alloc)).collect();
//! // Identical plan => identical decision stream.
//! let mut again = FaultInjector::new(plan);
//! let replay: Vec<bool> = (0..8).map(|_| again.should_inject(InjectSite::Alloc)).collect();
//! assert_eq!(decisions, replay);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod wire;

pub use trident_obs::InjectSite;
pub use wire::{mix64, WireInjector, WirePlan, WirePlanError, WireSite, WIRE_SITE_COUNT};

/// Number of injection sites (the length of [`InjectSite::ALL`]).
pub const SITE_COUNT: usize = InjectSite::ALL.len();

/// Probability scale: rules are expressed in thousandths (per-mille), so
/// the plan stays integer-only and `Copy`.
pub const PROB_SCALE: u16 = 1000;

/// One site's injection rule: a per-mille probability and an optional cap
/// on total injections at that site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SiteRule {
    /// Injection probability in thousandths (0 = never, 1000 = always).
    pub prob_milli: u16,
    /// Maximum injections at this site; `u32::MAX` means unbounded. The
    /// default of 0 combined with `prob_milli == 0` disables the site.
    pub max_faults: u32,
}

impl SiteRule {
    /// An unbounded rule firing with probability `prob_milli`/1000.
    #[must_use]
    pub fn with_probability(prob_milli: u16) -> SiteRule {
        SiteRule {
            prob_milli,
            max_faults: u32::MAX,
        }
    }

    /// Whether this rule can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.prob_milli > 0 && self.max_faults > 0
    }
}

/// A seeded, deterministic fault plan: one [`SiteRule`] per [`InjectSite`].
///
/// `Copy` on purpose — the plan travels inside `SimConfig`, which is
/// itself `Copy`, and must never accumulate hidden mutable state (all
/// run-time state lives in the [`FaultInjector`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    seed: u64,
    rules: [SiteRule; SITE_COUNT],
}

impl FaultPlan {
    /// The plan that injects nothing (all rules inactive).
    #[must_use]
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rules: [SiteRule::default(); SITE_COUNT],
        }
    }

    /// A builder starting from [`FaultPlan::disabled`] with `seed`.
    #[must_use]
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan {
                seed,
                rules: [SiteRule::default(); SITE_COUNT],
            },
            error: None,
        }
    }

    /// A plan firing at every site with the same per-mille probability.
    ///
    /// # Panics
    ///
    /// Never: `prob_milli` is clamped to [`PROB_SCALE`].
    #[must_use]
    pub fn uniform(seed: u64, prob_milli: u16) -> FaultPlan {
        let rule = SiteRule::with_probability(prob_milli.min(PROB_SCALE));
        FaultPlan {
            seed,
            rules: [rule; SITE_COUNT],
        }
    }

    /// A randomized-but-seeded plan: each site's probability is derived
    /// from `seed` and bounded by `max_prob_milli`, so distinct seeds
    /// exercise distinct failure mixes while remaining reproducible.
    #[must_use]
    pub fn randomized(seed: u64, max_prob_milli: u16) -> FaultPlan {
        let cap = u64::from(max_prob_milli.min(PROB_SCALE));
        let mut rules = [SiteRule::default(); SITE_COUNT];
        for (i, rule) in rules.iter_mut().enumerate() {
            // Mix with a distinct stream tag so the per-site probabilities
            // are decorrelated from the per-site decision streams.
            let draw = splitmix64(seed ^ 0xFA17_0000 ^ ((i as u64) << 32));
            *rule = SiteRule::with_probability((draw % (cap + 1)) as u16);
        }
        FaultPlan { seed, rules }
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rule for `site`.
    #[must_use]
    pub fn rule(&self, site: InjectSite) -> SiteRule {
        self.rules[site as usize]
    }

    /// Whether any site can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rules.iter().any(SiteRule::is_active)
    }
}

/// Builder for [`FaultPlan`] with validation at [`build`](FaultPlanBuilder::build).
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
    error: Option<PlanError>,
}

impl FaultPlanBuilder {
    /// Sets `site` to fire unbounded with probability `prob_milli`/1000.
    #[must_use]
    pub fn site(mut self, site: InjectSite, prob_milli: u16) -> FaultPlanBuilder {
        if prob_milli > PROB_SCALE {
            self.error = Some(PlanError::ProbabilityOutOfRange { site, prob_milli });
        } else {
            self.plan.rules[site as usize] = SiteRule::with_probability(prob_milli);
        }
        self
    }

    /// Sets `site` to fire with probability `prob_milli`/1000 at most
    /// `max_faults` times.
    #[must_use]
    pub fn site_capped(
        mut self,
        site: InjectSite,
        prob_milli: u16,
        max_faults: u32,
    ) -> FaultPlanBuilder {
        if prob_milli > PROB_SCALE {
            self.error = Some(PlanError::ProbabilityOutOfRange { site, prob_milli });
        } else {
            self.plan.rules[site as usize] = SiteRule {
                prob_milli,
                max_faults,
            };
        }
        self
    }

    /// Finalizes the plan.
    ///
    /// # Errors
    ///
    /// [`PlanError`] if any rule was out of range.
    pub fn build(self) -> Result<FaultPlan, PlanError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.plan),
        }
    }
}

/// An invalid [`FaultPlan`] rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// A probability exceeded [`PROB_SCALE`].
    ProbabilityOutOfRange {
        /// The offending site.
        site: InjectSite,
        /// The rejected value.
        prob_milli: u16,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ProbabilityOutOfRange { site, prob_milli } => write!(
                f,
                "fault probability {prob_milli}/{PROB_SCALE} at site {site} exceeds the scale"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// SplitMix64 finalization — the same mixer `trident_sim::derive_cell_seed`
/// uses, so fault decisions inherit the workspace-wide determinism
/// argument: the output depends only on the input word, never on
/// scheduling.
#[must_use]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-site decision bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct SiteState {
    decisions: u64,
    injected: u64,
}

/// Executes a [`FaultPlan`]: one injector per memory-management context.
///
/// Each call to [`should_inject`](FaultInjector::should_inject) advances
/// the site's decision counter and hashes `(seed, site, index)`; the
/// decision stream for a given plan is therefore a fixed sequence,
/// independent of what other sites or other contexts do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjector {
    plan: FaultPlan,
    sites: [SiteState; SITE_COUNT],
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::disabled()
    }
}

impl FaultInjector {
    /// An injector that never fires.
    #[must_use]
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(FaultPlan::disabled())
    }

    /// An injector executing `plan` from decision zero.
    #[must_use]
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            sites: [SiteState::default(); SITE_COUNT],
        }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Whether any site can still fire. Hot paths use this to skip the
    /// per-decision hash entirely when injection is off.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.plan.is_active()
    }

    /// Decides whether to inject a fault at `site`, advancing the site's
    /// decision counter.
    ///
    /// The result is a pure function of `(plan seed, site, decision
    /// index)`: the k-th query at a site always returns the same answer
    /// for the same plan, whatever happened elsewhere.
    pub fn should_inject(&mut self, site: InjectSite) -> bool {
        let rule = self.plan.rules[site as usize];
        if !rule.is_active() {
            return false;
        }
        let state = &mut self.sites[site as usize];
        if state.injected >= u64::from(rule.max_faults) {
            return false;
        }
        let index = state.decisions;
        state.decisions += 1;
        let word = splitmix64(
            self.plan.seed
                ^ (site as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let fire = (word % u64::from(PROB_SCALE)) < u64::from(rule.prob_milli);
        if fire {
            state.injected += 1;
        }
        fire
    }

    /// Decisions made so far at `site`.
    #[must_use]
    pub fn decisions(&self, site: InjectSite) -> u64 {
        self.sites[site as usize].decisions
    }

    /// Faults injected so far at `site`.
    #[must_use]
    pub fn injected(&self, site: InjectSite) -> u64 {
        self.sites[site as usize].injected
    }

    /// Faults injected so far across all sites.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.sites.iter().map(|s| s.injected).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn disabled_injector_never_fires_and_never_counts() {
        let mut inj = FaultInjector::disabled();
        assert!(!inj.enabled());
        for site in InjectSite::ALL {
            for _ in 0..100 {
                assert!(!inj.should_inject(site));
            }
            assert_eq!(inj.decisions(site), 0, "inactive sites skip the hash");
        }
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn decision_stream_is_a_pure_function_of_seed_site_index() {
        let plan = FaultPlan::uniform(7, 300);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        // Interleave b's sites differently from a's: per-site streams must
        // not depend on global query order.
        let a_alloc: Vec<bool> = (0..64)
            .map(|_| a.should_inject(InjectSite::Alloc))
            .collect();
        let a_comp: Vec<bool> = (0..64)
            .map(|_| a.should_inject(InjectSite::Compaction))
            .collect();
        let mut b_alloc = Vec::new();
        let mut b_comp = Vec::new();
        for _ in 0..64 {
            b_comp.push(b.should_inject(InjectSite::Compaction));
            b_alloc.push(b.should_inject(InjectSite::Alloc));
        }
        assert_eq!(a_alloc, b_alloc);
        assert_eq!(a_comp, b_comp);
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = FaultInjector::new(FaultPlan::uniform(1, 500));
        let mut b = FaultInjector::new(FaultPlan::uniform(2, 500));
        let sa: Vec<bool> = (0..256)
            .map(|_| a.should_inject(InjectSite::Alloc))
            .collect();
        let sb: Vec<bool> = (0..256)
            .map(|_| b.should_inject(InjectSite::Alloc))
            .collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn cap_limits_injections() {
        let plan = FaultPlan::builder(3)
            .site_capped(InjectSite::Alloc, 1000, 5)
            .build()
            .unwrap();
        let mut inj = FaultInjector::new(plan);
        let fired = (0..100)
            .filter(|_| inj.should_inject(InjectSite::Alloc))
            .count();
        assert_eq!(fired, 5);
        assert_eq!(inj.injected(InjectSite::Alloc), 5);
    }

    #[test]
    fn builder_rejects_out_of_range_probability() {
        let err = FaultPlan::builder(0)
            .site(InjectSite::PvExchange, 1001)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("pv_exchange"));
    }

    #[test]
    fn randomized_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::randomized(99, 200);
        let b = FaultPlan::randomized(99, 200);
        assert_eq!(a, b);
        for site in InjectSite::ALL {
            assert!(a.rule(site).prob_milli <= 200);
        }
        assert_ne!(
            FaultPlan::randomized(99, 200),
            FaultPlan::randomized(100, 200)
        );
    }

    proptest! {
        #[test]
        fn firing_rate_tracks_probability(prob in 0u16..=1000, seed in 0u64..1024) {
            let mut inj = FaultInjector::new(FaultPlan::uniform(seed, prob));
            let n = 2000u64;
            let mut fired = 0u64;
            for _ in 0..n {
                if inj.should_inject(InjectSite::Promotion) {
                    fired += 1;
                }
            }
            let expected = n * u64::from(prob) / 1000;
            // Loose 4-sigma-ish bound; the stream is deterministic, so this
            // can never flake for a given proptest seed.
            let slack = 200 + expected / 5;
            prop_assert!(fired + slack >= expected && fired <= expected + slack,
                "prob={prob} fired={fired} expected={expected}");
        }
    }
}
