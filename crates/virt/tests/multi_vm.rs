//! Multiple VMs sharing one hypervisor: isolation and host-memory
//! accounting.

use trident_core::{PagePolicy, PolicyError, ThpPolicy, TridentConfig, TridentPolicy};
use trident_types::{AsId, PageGeometry, PageSize, Vpn};
use trident_virt::{Hypervisor, VirtualMachine};
use trident_vm::{AddressSpace, VmaKind};

fn host() -> Hypervisor {
    let geo = PageGeometry::TINY;
    let policy: Box<dyn PagePolicy> = Box::new(TridentPolicy::new(TridentConfig::full()));
    Hypervisor::new(geo, 64 * geo.base_pages(PageSize::new(2)), policy)
}

fn boot_guest(hyp: &mut Hypervisor, giants: u64) -> VirtualMachine {
    let geo = PageGeometry::TINY;
    let mut vm = hyp.create_vm(
        giants * geo.base_pages(PageSize::new(2)),
        Box::new(ThpPolicy::new()),
    );
    let mut proc = AddressSpace::new(AsId::new(1), geo);
    proc.mmap_at(
        Vpn::new(0),
        2 * geo.base_pages(PageSize::new(2)),
        VmaKind::Anon,
    )
    .unwrap();
    vm.kernel.spaces.insert(proc);
    vm
}

#[test]
fn vms_get_distinct_identities_and_host_views() {
    let mut hyp = host();
    let a = boot_guest(&mut hyp, 4);
    let b = boot_guest(&mut hyp, 4);
    assert_ne!(a.id(), b.id());
    assert!(hyp.spaces.get(a.id()).is_some());
    assert!(hyp.spaces.get(b.id()).is_some());
}

#[test]
fn guests_share_host_memory_without_frame_aliasing() {
    let geo = PageGeometry::TINY;
    let mut hyp = host();
    let mut a = boot_guest(&mut hyp, 4);
    let mut b = boot_guest(&mut hyp, 4);
    let pages = 2 * geo.base_pages(PageSize::new(2));
    for i in 0..pages {
        a.touch(&mut hyp, AsId::new(1), Vpn::new(i), true).unwrap();
        b.touch(&mut hyp, AsId::new(1), Vpn::new(i), true).unwrap();
    }
    // Every host frame backs exactly one (vm, gpa) pair: collect the leaf
    // head frames of both VMs' host views and verify disjointness.
    let frames = |hyp: &Hypervisor, id| -> Vec<u64> {
        let space = hyp.spaces.get(id).unwrap();
        let vmas: Vec<_> = space.vmas().copied().collect();
        vmas.iter()
            .flat_map(|v| space.page_table().mappings_in(v.start, v.pages))
            .map(|m| m.pfn.raw())
            .collect()
    };
    let fa = frames(&hyp, a.id());
    let fb = frames(&hyp, b.id());
    assert!(!fa.is_empty() && !fb.is_empty());
    for f in &fa {
        assert!(!fb.contains(f), "host frame {f:#x} aliased across VMs");
    }
    hyp.ctx.mem.assert_consistent();
}

#[test]
fn one_guest_faulting_beyond_its_ram_does_not_disturb_the_other() {
    let geo = PageGeometry::TINY;
    let mut hyp = host();
    let mut a = boot_guest(&mut hyp, 2);
    let mut b = boot_guest(&mut hyp, 2);
    // Guest A touches everything it has.
    let pages = 2 * geo.base_pages(PageSize::new(2));
    for i in 0..pages {
        a.touch(&mut hyp, AsId::new(1), Vpn::new(i), false).unwrap();
    }
    // Guest B touching outside its process VMAs is a guest-level bad
    // address — the host is never even consulted.
    let hypercalls_before = hyp.hypercalls();
    let err = b.touch(&mut hyp, AsId::new(1), Vpn::new(1 << 30), false);
    assert!(matches!(err, Err(PolicyError::BadAddress(_))));
    assert_eq!(hyp.hypercalls(), hypercalls_before);
    // Guest A's mappings are intact.
    let space = a.kernel.spaces.get(AsId::new(1)).unwrap();
    assert!(space.page_table().translate(Vpn::new(0)).is_some());
}

#[test]
fn host_daemon_promotes_every_vm_over_time() {
    let geo = PageGeometry::TINY;
    let policy: Box<dyn PagePolicy> = Box::new(ThpPolicy::new());
    let mut hyp = Hypervisor::new(geo, 64 * geo.base_pages(PageSize::new(2)), policy);
    let mut vms: Vec<VirtualMachine> = (0..3).map(|_| boot_guest(&mut hyp, 2)).collect();
    for vm in &mut vms {
        for i in 0..geo.base_pages(PageSize::new(2)) {
            vm.touch(&mut hyp, AsId::new(1), Vpn::new(i), false)
                .unwrap();
        }
    }
    for _ in 0..6 {
        hyp.tick();
    }
    for vm in &vms {
        let host_view = hyp.spaces.get(vm.id()).unwrap();
        assert!(
            host_view.page_table().mapped_pages(PageSize::new(1)) > 0,
            "vm {} never got huge host mappings",
            vm.id()
        );
    }
}
