//! Property tests for the Trident_pv mapping exchange: arbitrary batches
//! of exchanges must permute gPA→hPA mappings without losing or
//! duplicating any host frame.

use std::collections::BTreeSet;

use proptest::prelude::*;
use trident_core::{map_chunk, PagePolicy, ThpPolicy, TridentConfig, TridentPolicy};
use trident_types::{AsId, PageGeometry, PageSize, Vpn};
use trident_virt::{Hypervisor, VirtualMachine};
use trident_vm::{AddressSpace, VmaKind};

fn boot(huge_chunks: u64) -> (Hypervisor, VirtualMachine) {
    let geo = PageGeometry::TINY;
    let host: Box<dyn PagePolicy> = Box::new(ThpPolicy::new());
    let mut hyp = Hypervisor::new(geo, 64 * geo.base_pages(PageSize::new(2)), host);
    let mut vm = hyp.create_vm(
        32 * geo.base_pages(PageSize::new(2)),
        Box::new(TridentPolicy::new(TridentConfig::paravirt())),
    );
    let asid = AsId::new(1);
    let mut proc = AddressSpace::new(asid, geo);
    proc.mmap_at(
        Vpn::new(0),
        8 * geo.base_pages(PageSize::new(2)),
        VmaKind::Anon,
    )
    .unwrap();
    vm.kernel.spaces.insert(proc);
    let hp = geo.base_pages(PageSize::new(1));
    for i in 0..huge_chunks {
        let head = Vpn::new(i * hp);
        let space = vm.kernel.spaces.get_mut(asid).unwrap();
        map_chunk(&mut vm.kernel.ctx, space, head, PageSize::new(1)).unwrap();
        vm.touch(&mut hyp, asid, head, true).unwrap();
    }
    (hyp, vm)
}

/// The multiset of host frames backing the first `chunks` huge gPA pages.
fn host_frames(hyp: &Hypervisor, vm: &VirtualMachine, chunks: u64) -> BTreeSet<u64> {
    let geo = PageGeometry::TINY;
    let hp = geo.base_pages(PageSize::new(1));
    let host = hyp.spaces.get(vm.id()).unwrap();
    (0..chunks)
        .filter_map(|i| host.page_table().translate(Vpn::new(i * hp)))
        .map(|t| t.head_pfn.raw())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any batch of exchanges among backed gPAs is a permutation: the set
    /// of backing host frames is exactly preserved, and both memories
    /// stay internally consistent.
    #[test]
    fn exchanges_permute_host_frames(
        pair_indices in prop::collection::vec((0u64..16, 0u64..16), 1..24),
        batched in any::<bool>(),
    ) {
        let geo = PageGeometry::TINY;
        let hp = geo.base_pages(PageSize::new(1));
        let (mut hyp, vm) = boot(16);
        let vm_id = vm.id();
        let before = host_frames(&hyp, &vm, 16);
        prop_assert_eq!(before.len(), 16, "distinct frames to start");
        let pairs: Vec<(Vpn, Vpn)> = pair_indices
            .iter()
            .map(|(a, b)| (Vpn::new(a * hp), Vpn::new(b * hp)))
            .collect();
        hyp.exchange_mappings(vm_id, &pairs, batched).unwrap();
        let after = host_frames(&hyp, &vm, 16);
        prop_assert_eq!(before, after, "exchange must be a permutation");
        hyp.ctx.mem.assert_consistent();
        vm.kernel.ctx.mem.assert_consistent();
    }

    /// Exchanging a pair twice restores the original mapping.
    #[test]
    fn double_exchange_is_identity(a in 0u64..16, b in 0u64..16) {
        let geo = PageGeometry::TINY;
        let hp = geo.base_pages(PageSize::new(1));
        let (mut hyp, vm) = boot(16);
        let vm_id = vm.id();
        let gpa_a = Vpn::new(a * hp);
        let gpa_b = Vpn::new(b * hp);
        let host_of = |hyp: &Hypervisor, gpa: Vpn| {
            hyp.spaces
                .get(vm_id)
                .unwrap()
                .page_table()
                .translate(gpa)
                .unwrap()
                .head_pfn
        };
        let orig_a = host_of(&hyp, gpa_a);
        let orig_b = host_of(&hyp, gpa_b);
        hyp.exchange_mappings(vm_id, &[(gpa_a, gpa_b)], true).unwrap();
        if a != b {
            prop_assert_eq!(host_of(&hyp, gpa_a), orig_b);
        }
        hyp.exchange_mappings(vm_id, &[(gpa_a, gpa_b)], true).unwrap();
        prop_assert_eq!(host_of(&hyp, gpa_a), orig_a);
        prop_assert_eq!(host_of(&hyp, gpa_b), orig_b);
    }
}
