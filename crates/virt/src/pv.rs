//! Trident_pv: copy-less promotion through gPA→hPA mapping exchange (§6).
//!
//! To promote a gVA range to a 1GB page, the guest needs the backing gPA
//! range to be contiguous, which normally means *copying* guest-physical
//! pages. Trident_pv observes that copying a guest physical page can be
//! mimicked by exchanging the gPA→hPA mappings of the source and
//! destination (Figure 8): after the exchange, the destination gPA maps
//! the host frame that holds the source's data. The guest passes batches
//! of (source, destination) gPA pairs to the hypervisor in a single
//! hypercall; on any failure the guest falls back to copying.

use core::fmt;
use std::error::Error;

use trident_core::{Event, PromoteError, SpanKind};
use trident_phys::{FrameUse, MappingOwner};
use trident_types::{AsId, PageGeometry, PageSize, Pfn, Vpn};

use crate::{GuestKernel, Hypervisor};

/// Why a mapping exchange could not be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PvError {
    /// A gPA in the batch is not backed by the host at 2MB granularity
    /// and could not be brought to it.
    SizeMismatch {
        /// The offending guest-physical page.
        gpa: Vpn,
    },
    /// The VM is unknown to the hypervisor.
    UnknownVm,
    /// The hypercall was failed by an installed fault plan (chaos
    /// testing); the guest must take its copy fallback.
    Injected,
}

impl fmt::Display for PvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PvError::SizeMismatch { gpa } => {
                write!(f, "gPA {gpa} is not exchangeable at 2MB granularity")
            }
            PvError::UnknownVm => f.write_str("unknown virtual machine"),
            PvError::Injected => f.write_str("exchange hypercall failed by fault injection"),
        }
    }
}

impl Error for PvError {}

impl Hypervisor {
    /// Services the Trident_pv hypercall: for every `(src, dst)` gPA pair,
    /// exchange the two gPA→hPA mappings at huge (2MB) granularity. With
    /// `batched`, all pairs ride one guest→hypervisor transition; without,
    /// each pair pays its own (§6 measures ≈300ns per transition, making
    /// batching the difference between ≈30ms and ≈500µs per 1GB).
    ///
    /// Host leaves larger than 2MB are split first (as KVM splits EPT
    /// huge pages); unbacked gPAs are faulted in. Returns the hypervisor
    /// CPU time in nanoseconds.
    ///
    /// # Errors
    ///
    /// [`PvError::UnknownVm`] for an unknown VM; [`PvError::SizeMismatch`]
    /// when a gPA is backed at 4KB granularity (the guest then falls back
    /// to copying). Pairs exchanged before a failure stay exchanged — the
    /// hypercall reports failures via the shared page and the guest
    /// handles the remainder (§6).
    pub fn exchange_mappings(
        &mut self,
        vm: AsId,
        pairs: &[(Vpn, Vpn)],
        batched: bool,
    ) -> Result<u64, PvError> {
        if self.spaces.get(vm).is_none() {
            return Err(PvError::UnknownVm);
        }
        // Chaos hook: an installed fault plan can fail the whole hypercall
        // before any pair is exchanged, exercising the guest's copy
        // fallback deterministically.
        if self.ctx.inject(trident_core::InjectSite::PvExchange) {
            return Err(PvError::Injected);
        }
        let cost = self.ctx.cost;
        let mut ns = if batched {
            self.count_hypercall();
            cost.hypercall_ns
        } else {
            0
        };
        for &(src, dst) in pairs {
            if !batched {
                self.count_hypercall();
                ns += cost.hypercall_ns + cost.pv_unbatched_extra_ns;
            }
            self.ensure_huge_backing(vm, src)?;
            self.ensure_huge_backing(vm, dst)?;
            let space = self.spaces.get_mut(vm).expect("vm checked above");
            let src_pfn = space
                .page_table()
                .translate(src)
                .expect("ensured backed")
                .head_pfn;
            let dst_pfn = space
                .page_table()
                .translate(dst)
                .expect("ensured backed")
                .head_pfn;
            space
                .page_table_mut()
                .remap(src, dst_pfn)
                .expect("leaf exists");
            space
                .page_table_mut()
                .remap(dst, src_pfn)
                .expect("leaf exists");
            // Keep the reverse map honest: each host frame now belongs to
            // the other gPA.
            self.ctx
                .mem
                .set_owner(src_pfn, Some(MappingOwner { asid: vm, vpn: dst }));
            self.ctx
                .mem
                .set_owner(dst_pfn, Some(MappingOwner { asid: vm, vpn: src }));
            ns += cost.pv_exchange_pair_ns;
        }
        Ok(ns)
    }

    /// Makes sure `gpa` is host-mapped by a leaf of exactly huge size:
    /// faults it in if unbacked, splits a giant leaf if necessary.
    fn ensure_huge_backing(&mut self, vm: AsId, gpa: Vpn) -> Result<(), PvError> {
        let geo = self.ctx.geometry();
        let huge = exchange_rung(&geo);
        let head = Vpn::new(gpa.raw() & !(geo.base_pages(huge) - 1));
        loop {
            let space = self.spaces.get_mut(vm).expect("vm exists");
            match space.page_table().translate(head) {
                None => {
                    self.touch_gpa(vm, head, true)
                        .map_err(|_| PvError::SizeMismatch { gpa })?;
                }
                Some(t) if t.size == huge && t.head_vpn == head => return Ok(()),
                Some(t) if t.size == geo.largest() => {
                    self.split_giant_leaf(vm, t.head_vpn);
                }
                Some(_) => return Err(PvError::SizeMismatch { gpa }),
            }
        }
    }

    /// Splits a host giant leaf into huge leaves (EPT splitting). The
    /// giant frame is released and huge frames take its place; the data
    /// relocation this implies is a modeling simplification — real EPT
    /// splitting reuses the same frames — so no copy cost is charged.
    fn split_giant_leaf(&mut self, vm: AsId, head_gpa: Vpn) {
        let geo = self.ctx.geometry();
        let huge = exchange_rung(&geo);
        let space = self.spaces.get_mut(vm).expect("vm exists");
        let t = space
            .page_table()
            .translate(head_gpa)
            .expect("giant leaf exists");
        debug_assert_eq!(t.size, geo.largest());
        space.page_table_mut().unmap(head_gpa).expect("leaf exists");
        self.ctx.mem.free(t.head_pfn).expect("frame was live");
        let hp = geo.base_pages(huge);
        let count = geo.base_pages(geo.largest()) / hp;
        for i in 0..count {
            let sub = head_gpa + i * hp;
            let owner = MappingOwner { asid: vm, vpn: sub };
            let pfn = self
                .ctx
                .mem
                .allocate(huge, FrameUse::User, Some(owner))
                .expect("the freed giant block provides the huge frames");
            let space = self.spaces.get_mut(vm).expect("vm exists");
            space
                .page_table_mut()
                .map(sub, pfn, huge)
                .expect("span was emptied");
        }
    }
}

/// The rung whose mappings the pv exchange trades: the ladder's natural
/// PMD-level (level-2) rung — "2MB" on x86-64, whatever the architecture
/// calls it elsewhere. Exchange doesn't pay below it (§6), and group
/// rungs (NAPOT / contiguous spans) are runs of PTEs, not single
/// table-level mappings, so they copy like base pages.
fn exchange_rung(geo: &PageGeometry) -> PageSize {
    geo.size_for_order(geo.level_order(2))
        .expect("every ladder has a natural level-2 rung")
}

/// Report of one copy-less giant-page promotion in the guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvPromoteReport {
    /// Guest + hypervisor CPU time in nanoseconds.
    pub ns: u64,
    /// 2MB mappings exchanged instead of copied.
    pub pairs_exchanged: u64,
    /// Bytes copied for portions not mapped at 2MB (and for any exchange
    /// fallback).
    pub bytes_copied: u64,
    /// Whether the hypercall failed and the guest fell back to copying.
    pub fell_back: bool,
}

/// Promotes the giant-aligned gVA chunk at `head` of guest process `asid`
/// to a 1GB page *without copying*: allocates a contiguous gPA block,
/// exchanges the gPA→hPA mappings of the old 2MB-backed portions with the
/// block's sub-ranges via one batched hypercall, and installs the giant
/// guest leaf. 4KB-backed portions are copied (exchange doesn't pay below
/// 2MB, §6); if the hypercall fails the whole promotion falls back to
/// copying.
///
/// # Errors
///
/// [`PromoteError::NoContiguity`] when the guest has no free contiguous
/// gPA block; [`PromoteError::NotACandidate`] when the chunk is already
/// promoted or empty.
///
/// # Panics
///
/// Panics if `asid` is unknown or `head` is not giant-aligned.
pub fn copyless_promote_giant(
    guest: &mut GuestKernel,
    hyp: &mut Hypervisor,
    vm: AsId,
    asid: AsId,
    head: Vpn,
) -> Result<PvPromoteReport, PromoteError> {
    let geo = guest.ctx.geometry();
    let top = geo.largest();
    let huge = exchange_rung(&geo);
    let span = geo.base_pages(top);
    let hp = geo.base_pages(huge);
    let space = guest.spaces.get_mut(asid).expect("guest process exists");
    let profile = space.page_table().chunk_profile(head, top);
    if profile.mapped[top.rung()] > 0 || profile.mapped_total() == 0 {
        return Err(PromoteError::NotACandidate);
    }

    // Contiguous destination in guest-physical memory.
    let owner = MappingOwner { asid, vpn: head };
    let dst: Pfn =
        match guest
            .ctx
            .zero_pool
            .take_prepared(&mut guest.ctx.mem, FrameUse::User, Some(owner))
        {
            Some(pfn) => pfn,
            None => guest
                .ctx
                .mem
                .allocate(top, FrameUse::User, Some(owner))
                .map_err(|_| PromoteError::NoContiguity)?,
        };

    // Collect the old leaves and the exchange batch.
    let old = space.page_table().mappings_in(head, span);
    let mut pairs = Vec::new();
    let mut copied_pages = 0u64;
    for m in &old {
        if m.size == huge {
            let offset = m.vpn - head;
            pairs.push((Vpn::new(m.pfn.raw()), Vpn::new(dst.raw() + offset)));
        } else {
            copied_pages += geo.base_pages(m.size);
        }
    }

    // One batched hypercall exchanges every 2MB mapping.
    let mut ns = 0;
    let mut fell_back = false;
    let mut exchanged = pairs.len() as u64;
    if !pairs.is_empty() {
        match hyp.exchange_mappings(vm, &pairs, true) {
            Ok(hyp_ns) => {
                ns += hyp_ns;
                guest.ctx.span_begin(SpanKind::PvExchange);
                guest.ctx.record(Event::PvExchange {
                    pairs: exchanged,
                    bytes: exchanged * geo.bytes(huge),
                    batched: true,
                });
                guest.ctx.span_end(SpanKind::PvExchange, hyp_ns);
            }
            Err(_) => {
                // Fall back to copying everything (§6). The fallback event
                // carries exactly the bytes the exchange would have moved.
                fell_back = true;
                guest.ctx.record(Event::PvFallback {
                    bytes: exchanged * geo.bytes(huge),
                });
                copied_pages += exchanged * hp;
                exchanged = 0;
            }
        }
    }

    // Guest page-table surgery: replace the small leaves with one giant.
    let space = guest.spaces.get_mut(asid).expect("guest process exists");
    for m in &old {
        space
            .page_table_mut()
            .unmap(m.vpn)
            .expect("enumerated leaf");
    }
    space
        .page_table_mut()
        .map(head, dst, top)
        .expect("span was emptied");
    for m in &old {
        guest.ctx.mem.free(m.pfn).expect("old gPA block was live");
    }

    let bytes_copied = copied_pages * geo.base_bytes();
    ns += guest.ctx.cost.copy_ns(bytes_copied) + guest.ctx.cost.tlb_shootdown_ns;
    guest.ctx.record(Event::Promote {
        size: top,
        bytes_copied,
        bloat_pages: profile.unmapped,
    });

    Ok(PvPromoteReport {
        ns,
        pairs_exchanged: exchanged,
        bytes_copied,
        fell_back,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_core::{
        map_chunk, BasePolicy, PagePolicy, ThpPolicy, TridentConfig, TridentPolicy,
    };
    use trident_types::PageGeometry;
    use trident_vm::{AddressSpace, VmaKind};

    fn boot(host: Box<dyn PagePolicy>) -> (Hypervisor, crate::VirtualMachine) {
        let geo = PageGeometry::TINY;
        let mut hyp = Hypervisor::new(geo, 32 * 64, host);
        let mut vm = hyp.create_vm(
            16 * 64,
            Box::new(TridentPolicy::new(TridentConfig::paravirt())),
        );
        let mut proc = AddressSpace::new(AsId::new(1), geo);
        proc.mmap_at(Vpn::new(0), 4 * 64, VmaKind::Anon).unwrap();
        vm.kernel.spaces.insert(proc);
        (hyp, vm)
    }

    /// Back a gVA range with huge pages in the guest, touching the host.
    fn back_with_huge(
        hyp: &mut Hypervisor,
        vm: &mut crate::VirtualMachine,
        start: u64,
        huge_count: u64,
    ) {
        for i in 0..huge_count {
            let head = Vpn::new(start + i * 8);
            let space = vm.kernel.spaces.get_mut(AsId::new(1)).unwrap();
            map_chunk(&mut vm.kernel.ctx, space, head, PageSize::new(1)).unwrap();
            // Touch so the host backs the gPA.
            vm.touch(hyp, AsId::new(1), head, true).unwrap();
        }
    }

    #[test]
    fn figure8_exchange_preserves_host_frames() {
        let (mut hyp, mut vm) = boot(Box::new(ThpPolicy::new()));
        back_with_huge(&mut hyp, &mut vm, 0, 2);
        let vm_id = vm.id();
        // Record the host frames backing the two old gPA huge pages.
        let old_gpas: Vec<Vpn> = {
            let space = vm.kernel.spaces.get(AsId::new(1)).unwrap();
            space
                .page_table()
                .mappings_in(Vpn::new(0), 16)
                .iter()
                .map(|m| Vpn::new(m.pfn.raw()))
                .collect()
        };
        let old_hpas: Vec<Pfn> = old_gpas
            .iter()
            .map(|g| {
                hyp.spaces
                    .get(vm_id)
                    .unwrap()
                    .page_table()
                    .translate(*g)
                    .unwrap()
                    .head_pfn
            })
            .collect();
        // Promote gVA chunk [0, 64) copy-lessly.
        let report =
            copyless_promote_giant(&mut vm.kernel, &mut hyp, vm_id, AsId::new(1), Vpn::new(0))
                .unwrap();
        assert_eq!(report.pairs_exchanged, 2);
        assert!(!report.fell_back);
        assert_eq!(report.bytes_copied, 0);
        // The guest now has one giant leaf over contiguous gPA...
        let space = vm.kernel.spaces.get(AsId::new(1)).unwrap();
        let t = space.page_table().translate(Vpn::new(0)).unwrap();
        assert_eq!(t.size, PageSize::new(2));
        // ...and the new gPA sub-ranges map to the host frames that held
        // the data (Figure 8c).
        let host = hyp.spaces.get(vm_id).unwrap();
        for (i, old_hpa) in old_hpas.iter().enumerate() {
            let new_gpa = Vpn::new(t.head_pfn.raw() + (i as u64) * 8);
            let backing = host.page_table().translate(new_gpa).unwrap().head_pfn;
            assert_eq!(backing, *old_hpa, "data moved without copy");
        }
        hyp.ctx.mem.assert_consistent();
        vm.kernel.ctx.mem.assert_consistent();
    }

    #[test]
    fn exchange_splits_host_giant_leaves() {
        // Host runs Trident, so gPAs are backed by giant host leaves that
        // must be split before a 2MB exchange.
        let (mut hyp, mut vm) = boot(Box::new(TridentPolicy::new(TridentConfig::full())));
        back_with_huge(&mut hyp, &mut vm, 0, 2);
        let vm_id = vm.id();
        let host = hyp.spaces.get(vm_id).unwrap();
        let gpa0 = {
            let space = vm.kernel.spaces.get(AsId::new(1)).unwrap();
            Vpn::new(
                space
                    .page_table()
                    .translate(Vpn::new(0))
                    .unwrap()
                    .head_pfn
                    .raw(),
            )
        };
        assert_eq!(
            host.page_table().translate(gpa0).unwrap().size,
            PageSize::new(2)
        );
        let report =
            copyless_promote_giant(&mut vm.kernel, &mut hyp, vm_id, AsId::new(1), Vpn::new(0))
                .unwrap();
        assert!(!report.fell_back);
        // The affected host mappings are now huge-grained.
        let host = hyp.spaces.get(vm_id).unwrap();
        assert_eq!(
            host.page_table().translate(gpa0).unwrap().size,
            PageSize::new(1)
        );
        hyp.ctx.mem.assert_consistent();
    }

    #[test]
    fn exchange_rejects_base_grained_backing() {
        let (mut hyp, mut vm) = boot(Box::new(BasePolicy::new()));
        back_with_huge(&mut hyp, &mut vm, 0, 1);
        let vm_id = vm.id();
        let err = hyp
            .exchange_mappings(vm_id, &[(Vpn::new(0), Vpn::new(64))], true)
            .unwrap_err();
        assert!(matches!(err, PvError::SizeMismatch { .. }));
    }

    #[test]
    fn fallback_copies_when_exchange_fails() {
        let (mut hyp, mut vm) = boot(Box::new(BasePolicy::new()));
        back_with_huge(&mut hyp, &mut vm, 0, 2);
        let vm_id = vm.id();
        let report =
            copyless_promote_giant(&mut vm.kernel, &mut hyp, vm_id, AsId::new(1), Vpn::new(0))
                .unwrap();
        assert!(report.fell_back);
        assert_eq!(report.pairs_exchanged, 0);
        assert_eq!(report.bytes_copied, 16 * 4096);
        // The promotion still happened, just by copying.
        let space = vm.kernel.spaces.get(AsId::new(1)).unwrap();
        assert_eq!(
            space.page_table().translate(Vpn::new(0)).unwrap().size,
            PageSize::new(2)
        );
    }

    /// Satellite check: under an injected hypercall failure the guest
    /// falls back to copying *exactly* the bytes the exchange would have
    /// moved, and the fallback is visible in the guest's stats.
    #[test]
    fn injected_hypercall_failure_copies_exactly_the_exchange_bytes() {
        use trident_core::{FaultInjector, FaultPlan, InjectSite};
        // A THP host would normally let the exchange succeed — only the
        // injected fault forces the fallback.
        let (mut hyp, mut vm) = boot(Box::new(ThpPolicy::new()));
        back_with_huge(&mut hyp, &mut vm, 0, 2);
        let vm_id = vm.id();
        let plan = FaultPlan::builder(7)
            .site(InjectSite::PvExchange, 1000)
            .build()
            .unwrap();
        hyp.ctx.fault = FaultInjector::new(plan);
        let report =
            copyless_promote_giant(&mut vm.kernel, &mut hyp, vm_id, AsId::new(1), Vpn::new(0))
                .unwrap();
        assert!(report.fell_back);
        assert_eq!(report.pairs_exchanged, 0);
        // The two 2MB pairs (8 base pages each, TINY geometry) that the
        // exchange would have moved are exactly what got copied.
        assert_eq!(report.bytes_copied, 2 * 8 * 4096);
        let guest = vm.kernel.ctx.stats.snapshot();
        assert_eq!(guest.pv_fallbacks, 1);
        assert_eq!(guest.pv_fallback_bytes, report.bytes_copied);
        assert_eq!(guest.pv_bytes_exchanged, 0, "nothing was exchanged");
        // The promotion itself still completed gracefully.
        let space = vm.kernel.spaces.get(AsId::new(1)).unwrap();
        assert_eq!(
            space.page_table().translate(Vpn::new(0)).unwrap().size,
            PageSize::new(2)
        );
        hyp.ctx.mem.assert_consistent();
        vm.kernel.ctx.mem.assert_consistent();
    }

    /// Satellite check: guest and host stats reconcile under injected
    /// hypercall failures — every guest-side fallback matches one
    /// host-side injected PvExchange fault, and exchange accounting stays
    /// exclusive (a promotion either exchanges or falls back, never both).
    #[test]
    fn guest_and_host_stats_reconcile_under_injected_failures() {
        use trident_core::{FaultInjector, FaultPlan, InjectSite};
        let (mut hyp, mut vm) = boot(Box::new(ThpPolicy::new()));
        // Two independent giant chunks, each backed by two 2MB pages.
        back_with_huge(&mut hyp, &mut vm, 0, 2);
        back_with_huge(&mut hyp, &mut vm, 64, 2);
        let vm_id = vm.id();
        // 50% per-hypercall failure probability: with seed 3 one of the
        // two promotions falls back and one succeeds (deterministic).
        let plan = FaultPlan::builder(3)
            .site(InjectSite::PvExchange, 500)
            .build()
            .unwrap();
        hyp.ctx.fault = FaultInjector::new(plan);
        let mut fallbacks = 0u64;
        let mut exchanged_pairs = 0u64;
        for head in [0u64, 64] {
            let report = copyless_promote_giant(
                &mut vm.kernel,
                &mut hyp,
                vm_id,
                AsId::new(1),
                Vpn::new(head),
            )
            .unwrap();
            fallbacks += u64::from(report.fell_back);
            exchanged_pairs += report.pairs_exchanged;
        }
        assert_eq!(fallbacks, 1, "seed 3 fails exactly one of two hypercalls");
        let guest = vm.kernel.ctx.stats.snapshot();
        let host = hyp.ctx.stats.snapshot();
        // One-to-one: guest fallbacks == host injected PvExchange faults.
        assert_eq!(guest.pv_fallbacks, fallbacks);
        assert_eq!(host.injected_at(InjectSite::PvExchange), fallbacks);
        assert_eq!(hyp.ctx.fault.injected(InjectSite::PvExchange), 1);
        // Exclusivity: the surviving promotion's pairs are all exchanged,
        // the failed one's bytes all fell back.
        assert_eq!(exchanged_pairs, 2);
        assert_eq!(guest.pv_bytes_exchanged, 2 * 8 * 4096);
        assert_eq!(guest.pv_fallback_bytes, 2 * 8 * 4096);
        hyp.ctx.mem.assert_consistent();
        vm.kernel.ctx.mem.assert_consistent();
    }

    #[test]
    fn batched_exchange_is_far_cheaper_than_unbatched() {
        let (mut hyp, mut vm) = boot(Box::new(ThpPolicy::new()));
        back_with_huge(&mut hyp, &mut vm, 0, 8);
        let vm_id = vm.id();
        let space = vm.kernel.spaces.get(AsId::new(1)).unwrap();
        let pairs: Vec<(Vpn, Vpn)> = space
            .page_table()
            .mappings_in(Vpn::new(0), 64)
            .iter()
            .map(|m| (Vpn::new(m.pfn.raw()), Vpn::new(m.pfn.raw())))
            .collect();
        // Self-exchanges are a no-op semantically but cost the same.
        let batched = hyp.exchange_mappings(vm_id, &pairs, true).unwrap();
        let unbatched = hyp.exchange_mappings(vm_id, &pairs, false).unwrap();
        assert!(unbatched > 10 * batched);
        assert_eq!(hyp.hypercalls(), 1 + pairs.len() as u64);
    }

    #[test]
    fn pv_unmapped_destination_gets_faulted_in() {
        let (mut hyp, mut vm) = boot(Box::new(ThpPolicy::new()));
        back_with_huge(&mut hyp, &mut vm, 0, 1);
        let vm_id = vm.id();
        // Destination gPA 8*8=64 was never touched: the hypervisor must
        // fault it in during the exchange.
        let gpa_src = {
            let space = vm.kernel.spaces.get(AsId::new(1)).unwrap();
            Vpn::new(
                space
                    .page_table()
                    .translate(Vpn::new(0))
                    .unwrap()
                    .head_pfn
                    .raw(),
            )
        };
        let ns = hyp
            .exchange_mappings(vm_id, &[(gpa_src, Vpn::new(8 * 8))], true)
            .unwrap();
        assert!(ns > 0);
        let host = hyp.spaces.get(vm_id).unwrap();
        assert!(host.page_table().translate(Vpn::new(8 * 8)).is_some());
    }
}
