//! Virtualization layer for the Trident simulator.
//!
//! Models the two-level address translation of §2: a guest virtual address
//! (gVA) is translated to a guest physical address (gPA) by the guest OS's
//! page tables, and the gPA to a host physical address (hPA) by the
//! hypervisor's tables. Both levels run a [`PagePolicy`] of their own, so
//! every combination the paper evaluates (4KB+4KB, 2MB+2MB, 1GB+1GB,
//! THP+THP, Trident+Trident, ...) is expressible.
//!
//! The paravirtualized extension (§6) lives in [`pv`]: a batched hypercall
//! through which the guest asks the hypervisor to *exchange* gPA→hPA
//! mappings instead of copying guest-physical pages, making 2MB→1GB
//! promotion in the guest copy-less (Figure 8).
//!
//! [`PagePolicy`]: trident_core::PagePolicy

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

mod nested;
pub mod pv;

pub use nested::{GuestKernel, Hypervisor, NestedAccess, VirtualMachine};
pub use pv::{copyless_promote_giant, PvError, PvPromoteReport};
