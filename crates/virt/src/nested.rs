//! Nested address spaces: guest OS over hypervisor.

use trident_core::{FaultOutcome, MmContext, PagePolicy, PolicyError, SpaceSet, TickOutcome};
use trident_phys::PhysicalMemory;
use trident_types::{AsId, PageGeometry, PageSize, Vpn};
use trident_vm::VmaKind;

/// One resolved guest memory access: which page sizes served each level.
///
/// The hardware TLB caches gVA→hPA at the *smaller* of the two sizes; a
/// miss pays the two-dimensional walk (see `trident-tlb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedAccess {
    /// Page size of the guest-level (gVA→gPA) leaf.
    pub guest_size: PageSize,
    /// Page size of the host-level (gPA→hPA) leaf.
    pub host_size: PageSize,
    /// The guest-physical page that was touched.
    pub gpa: Vpn,
    /// Guest fault serviced on this access, if any.
    pub guest_fault: Option<FaultOutcome>,
    /// Host (EPT) fault serviced on this access, if any.
    pub host_fault: Option<FaultOutcome>,
}

/// The guest OS: its view of "physical" memory is the gPA space, and it
/// runs its own page-size policy over it.
pub struct GuestKernel {
    /// Guest memory-management state (gPA plays the role of physical
    /// memory).
    pub ctx: MmContext,
    /// Guest processes.
    pub spaces: SpaceSet,
    /// The guest's page-size policy.
    pub policy: Box<dyn PagePolicy>,
}

impl std::fmt::Debug for GuestKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestKernel")
            .field("policy", &self.policy.name())
            .field("spaces", &self.spaces.len())
            .finish()
    }
}

/// A virtual machine: a guest kernel plus its identity on the host.
#[derive(Debug)]
pub struct VirtualMachine {
    id: AsId,
    /// The guest OS.
    pub kernel: GuestKernel,
}

impl VirtualMachine {
    /// The VM's identity in the hypervisor's space set.
    #[must_use]
    pub fn id(&self) -> AsId {
        self.id
    }

    /// Simulates one guest memory access at `gva` by process `asid`:
    /// faults the guest level and then the host level as needed, and
    /// reports the page sizes that served each level.
    ///
    /// # Errors
    ///
    /// Propagates [`PolicyError`] from either level's fault handler.
    pub fn touch(
        &mut self,
        hyp: &mut Hypervisor,
        asid: AsId,
        gva: Vpn,
        write: bool,
    ) -> Result<NestedAccess, PolicyError> {
        let space = self
            .kernel
            .spaces
            .get_mut(asid)
            .ok_or(PolicyError::BadAddress(gva))?;
        let mut guest_fault = None;
        let translation = match space.page_table_mut().access(gva, write) {
            Some(t) => t,
            None => {
                let fault = self
                    .kernel
                    .policy
                    .on_fault(&mut self.kernel.ctx, space, gva)?;
                guest_fault = Some(fault);
                space
                    .page_table_mut()
                    .access(gva, write)
                    .expect("fault handler installed a mapping")
            }
        };
        let gpa = Vpn::new(translation.pfn.raw());
        let (host_size, host_fault) = hyp.touch_gpa(self.id, gpa, write)?;
        Ok(NestedAccess {
            guest_size: translation.size,
            host_size,
            gpa,
            guest_fault,
            host_fault,
        })
    }

    /// Runs one guest background-daemon tick.
    pub fn tick(&mut self) -> TickOutcome {
        self.kernel
            .policy
            .on_tick(&mut self.kernel.ctx, &mut self.kernel.spaces)
    }
}

/// The hypervisor: host physical memory, one gPA→hPA address space per VM,
/// and the host's page-size policy (KVM uses the host kernel's THP, or
/// Trident when deployed there).
pub struct Hypervisor {
    /// Host memory-management state.
    pub ctx: MmContext,
    /// One address space per VM, mapping gPA (as "virtual") to hPA.
    pub spaces: SpaceSet,
    policy: Box<dyn PagePolicy>,
    hypercalls: u64,
    next_vm: u32,
}

impl std::fmt::Debug for Hypervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hypervisor")
            .field("policy", &self.policy.name())
            .field("vms", &self.spaces.len())
            .field("hypercalls", &self.hypercalls)
            .finish()
    }
}

impl Hypervisor {
    /// Creates a hypervisor over `host_pages` of physical memory running
    /// `policy` at the host level.
    #[must_use]
    pub fn new(geo: PageGeometry, host_pages: u64, policy: Box<dyn PagePolicy>) -> Hypervisor {
        Hypervisor {
            ctx: MmContext::new(PhysicalMemory::new(geo, host_pages)),
            spaces: SpaceSet::new(),
            policy,
            hypercalls: 0,
            next_vm: 1,
        }
    }

    /// Creates a hypervisor whose policy is built against the freshly
    /// created host context — needed by policies that pre-reserve memory
    /// (hugetlbfs).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (e.g. reservation failure).
    pub fn try_new<E>(
        geo: PageGeometry,
        host_pages: u64,
        build: impl FnOnce(&mut MmContext) -> Result<Box<dyn PagePolicy>, E>,
    ) -> Result<Hypervisor, E> {
        let mut ctx = MmContext::new(PhysicalMemory::new(geo, host_pages));
        let policy = build(&mut ctx)?;
        Ok(Hypervisor {
            ctx,
            spaces: SpaceSet::new(),
            policy,
            hypercalls: 0,
            next_vm: 1,
        })
    }

    /// Like [`Hypervisor::create_vm`], but builds the guest policy against
    /// the freshly created guest context (for reservation-based guest
    /// policies).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error.
    pub fn try_create_vm<E>(
        &mut self,
        guest_pages: u64,
        build: impl FnOnce(&mut MmContext) -> Result<Box<dyn PagePolicy>, E>,
    ) -> Result<VirtualMachine, E> {
        let geo = self.ctx.geometry();
        let id = AsId::new(self.next_vm);
        let mut guest_ctx = MmContext::new(PhysicalMemory::new(geo, guest_pages));
        let policy = build(&mut guest_ctx)?;
        self.next_vm += 1;
        let mut host_view = trident_vm::AddressSpace::new(id, geo);
        host_view
            .mmap_at(Vpn::new(0), guest_pages, VmaKind::Anon)
            .expect("fresh space has room");
        self.spaces.insert(host_view);
        Ok(VirtualMachine {
            id,
            kernel: GuestKernel {
                ctx: guest_ctx,
                spaces: SpaceSet::new(),
                policy,
            },
        })
    }

    /// Hypercalls serviced so far.
    #[must_use]
    pub fn hypercalls(&self) -> u64 {
        self.hypercalls
    }

    /// Records one guest→hypervisor transition (used by [`crate::pv`]).
    pub(crate) fn count_hypercall(&mut self) {
        self.hypercalls += 1;
    }

    /// The host policy's display name.
    #[must_use]
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Boots a VM with `guest_pages` of guest-physical memory, running
    /// `guest_policy` inside. The VM's gPA range appears to the host as
    /// one large anonymous mapping (how QEMU backs guest RAM).
    pub fn create_vm(
        &mut self,
        guest_pages: u64,
        guest_policy: Box<dyn PagePolicy>,
    ) -> VirtualMachine {
        let geo = self.ctx.geometry();
        let id = AsId::new(self.next_vm);
        self.next_vm += 1;
        let mut host_view = trident_vm::AddressSpace::new(id, geo);
        host_view
            .mmap_at(Vpn::new(0), guest_pages, VmaKind::Anon)
            .expect("fresh space has room");
        self.spaces.insert(host_view);
        VirtualMachine {
            id,
            kernel: GuestKernel {
                ctx: MmContext::new(PhysicalMemory::new(geo, guest_pages)),
                spaces: SpaceSet::new(),
                policy: guest_policy,
            },
        }
    }

    /// Ensures `gpa` of VM `vm` is backed by host memory, faulting the
    /// host level if needed. Returns the host leaf size and any fault
    /// serviced.
    ///
    /// # Errors
    ///
    /// Propagates the host policy's [`PolicyError`].
    pub fn touch_gpa(
        &mut self,
        vm: AsId,
        gpa: Vpn,
        write: bool,
    ) -> Result<(PageSize, Option<FaultOutcome>), PolicyError> {
        let space = self
            .spaces
            .get_mut(vm)
            .ok_or(PolicyError::BadAddress(gpa))?;
        let mut host_fault = None;
        let translation = match space.page_table_mut().access(gpa, write) {
            Some(t) => t,
            None => {
                let fault = self.policy.on_fault(&mut self.ctx, space, gpa)?;
                host_fault = Some(fault);
                space
                    .page_table_mut()
                    .access(gpa, write)
                    .expect("fault handler installed a mapping")
            }
        };
        Ok((translation.size, host_fault))
    }

    /// Runs one host background-daemon tick.
    pub fn tick(&mut self) -> TickOutcome {
        self.policy.on_tick(&mut self.ctx, &mut self.spaces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trident_core::{BasePolicy, ThpPolicy, TridentConfig, TridentPolicy};
    use trident_vm::AddressSpace;

    fn geo() -> PageGeometry {
        PageGeometry::TINY
    }

    fn boot(
        host_policy: Box<dyn PagePolicy>,
        guest_policy: Box<dyn PagePolicy>,
    ) -> (Hypervisor, VirtualMachine) {
        let g = geo();
        let mut hyp = Hypervisor::new(g, 16 * g.base_pages(PageSize::new(2)), host_policy);
        let mut vm = hyp.create_vm(8 * g.base_pages(PageSize::new(2)), guest_policy);
        let mut proc = AddressSpace::new(AsId::new(1), g);
        proc.mmap_at(Vpn::new(0), 4 * 64, VmaKind::Anon).unwrap();
        vm.kernel.spaces.insert(proc);
        (hyp, vm)
    }

    #[test]
    fn touch_faults_both_levels_once() {
        let (mut hyp, mut vm) = boot(
            Box::new(TridentPolicy::new(TridentConfig::full())),
            Box::new(TridentPolicy::new(TridentConfig::full())),
        );
        let a = vm
            .touch(&mut hyp, AsId::new(1), Vpn::new(5), false)
            .unwrap();
        assert_eq!(a.guest_size, PageSize::new(2));
        assert_eq!(a.host_size, PageSize::new(2));
        assert!(a.guest_fault.is_some());
        assert!(a.host_fault.is_some());
        // Second touch in the same giant page: no faults at either level.
        let b = vm
            .touch(&mut hyp, AsId::new(1), Vpn::new(6), false)
            .unwrap();
        assert!(b.guest_fault.is_none());
        assert!(b.host_fault.is_none());
    }

    #[test]
    fn mixed_policies_produce_mixed_sizes() {
        let (mut hyp, mut vm) = boot(Box::new(ThpPolicy::new()), Box::new(BasePolicy::new()));
        let a = vm
            .touch(&mut hyp, AsId::new(1), Vpn::new(0), false)
            .unwrap();
        assert_eq!(a.guest_size, PageSize::BASE);
        assert_eq!(a.host_size, PageSize::new(1));
    }

    #[test]
    fn distinct_guest_pages_may_share_a_host_leaf() {
        let (mut hyp, mut vm) = boot(
            Box::new(TridentPolicy::new(TridentConfig::full())),
            Box::new(BasePolicy::new()),
        );
        let a = vm
            .touch(&mut hyp, AsId::new(1), Vpn::new(0), false)
            .unwrap();
        let b = vm
            .touch(&mut hyp, AsId::new(1), Vpn::new(1), false)
            .unwrap();
        // Guest allocates 4KB gPA pages one by one; the host backed the
        // whole giant gPA chunk on the first touch.
        assert!(a.host_fault.is_some());
        assert!(b.host_fault.is_none());
        assert_eq!(b.host_size, PageSize::new(2));
    }

    #[test]
    fn guest_and_host_ticks_run_their_daemons() {
        let (mut hyp, mut vm) = boot(Box::new(ThpPolicy::new()), Box::new(ThpPolicy::new()));
        for i in 0..64 {
            vm.touch(&mut hyp, AsId::new(1), Vpn::new(i), false)
                .unwrap();
        }
        let gt = vm.tick();
        let ht = hyp.tick();
        // Daemons scanned something.
        assert!(gt.daemon_ns > 0);
        assert!(ht.daemon_ns > 0);
    }

    #[test]
    fn touch_outside_guest_vma_is_a_bad_address() {
        let (mut hyp, mut vm) = boot(Box::new(BasePolicy::new()), Box::new(BasePolicy::new()));
        assert!(matches!(
            vm.touch(&mut hyp, AsId::new(1), Vpn::new(100_000), false),
            Err(PolicyError::BadAddress(_))
        ));
    }
}
